package loadgen

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// Clients is the number of concurrent connections.
	Clients int
	// Rate is the target aggregate arrival rate in ops/sec. Arrivals
	// are generated open-loop on a fixed schedule independent of
	// completions, so latency includes queueing delay when the server
	// falls behind. Zero runs closed-loop at maximum throughput.
	Rate float64
	// Duration bounds the run in wall-clock time; Ops bounds it in
	// operation count. Whichever is set (Ops wins if both).
	Duration time.Duration
	Ops      int
	// KeySpace is the number of distinct keys; ZipfS/ZipfV shape the
	// Zipfian key popularity (ZipfS must be > 1; zero selects 1.1).
	KeySpace int
	ZipfS    float64
	ZipfV    float64
	// ValueSize is the SET payload size in bytes.
	ValueSize int
	// ReadFrac is the fraction of operations that are GETs.
	ReadFrac float64
	// MultiEvery makes every Nth write a MULTI/EXEC of MultiSize SETs
	// (0 disables).
	MultiEvery int
	MultiSize  int
	// Seed makes the key/op sequence deterministic.
	Seed int64
	// RecordWrites switches to unique keys ("c<client>-s<seq>", one
	// writer per key) and records every write with its ack outcome in
	// Result.Writes, for crash-recovery auditing.
	RecordWrites bool
}

// WriteRecord is one audited write (RecordWrites mode): the keys and
// values submitted, whether it was a MULTI, and whether the server
// acknowledged it before the run ended.
type WriteRecord struct {
	Keys  [][]byte
	Vals  [][]byte
	Multi bool
	Acked bool
	// AckTime is when the acknowledgement was observed; crash tests
	// compare it against the crash-snapshot instant to decide which
	// acks the image must contain.
	AckTime time.Time
}

// Result aggregates a load run.
type Result struct {
	// Ops counts completed operations; Errors counts RESP -ERR replies
	// and transport failures.
	Ops    int
	Errors int
	// Elapsed is the measured wall-clock span.
	Elapsed time.Duration
	// P50/P99/P999 are latency percentiles. Open-loop runs measure
	// from scheduled arrival (including queueing); closed-loop runs
	// measure from send.
	P50, P99, P999 time.Duration
	// Throughput is completed ops per wall-clock second.
	Throughput float64
	// Writes carries the audit log in RecordWrites mode.
	Writes []WriteRecord
}

// worker is one client connection's state.
type worker struct {
	id     int
	cl     *Client
	rng    *rand.Rand
	zipf   *rand.Zipf
	cfg    Config
	lats   []time.Duration
	errs   int
	ops    int
	seq    int
	writes []WriteRecord
	valBuf []byte
}

// Run executes the configured load against dial (a TCP dialer or
// PipeListener.Dial) and aggregates the results. stop, when non-nil, is
// polled between operations to end the run early (used by crash tests
// to freeze the audit log at the crash point).
func Run(dial func() (net.Conn, error), cfg Config, stop <-chan struct{}) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 1 << 16
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.1
	}
	if cfg.ZipfV < 1 {
		cfg.ZipfV = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	if cfg.Ops == 0 && cfg.Duration == 0 {
		cfg.Duration = time.Second
	}

	workers := make([]*worker, cfg.Clients)
	for i := range workers {
		conn, err := dial()
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		workers[i] = &worker{
			id:     i,
			cl:     NewClient(conn),
			rng:    rng,
			zipf:   rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.KeySpace-1)),
			cfg:    cfg,
			valBuf: make([]byte, cfg.ValueSize),
		}
	}

	start := time.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	perClientOps := 0
	if cfg.Ops > 0 {
		perClientOps = (cfg.Ops + cfg.Clients - 1) / cfg.Clients
	}
	// Open-loop: each client owns an interleaved slice of the global
	// arrival schedule (client i fires at t0 + (i + k*C)/Rate), so the
	// aggregate arrival process hits Rate without a central dispatcher.
	interval := paceInterval(cfg.Clients, cfg.Rate)

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer w.cl.Close()
			next := start
			if interval > 0 {
				next = start.Add(time.Duration(w.id) * interval / time.Duration(cfg.Clients))
			}
			for {
				if stopped(stop) {
					return
				}
				if perClientOps > 0 && w.ops >= perClientOps {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				sched := time.Now()
				if interval > 0 {
					// A send scheduled past the deadline belongs to an
					// interval the run will never measure: end cleanly
					// instead of sleeping through the deadline to issue
					// it.
					if !deadline.IsZero() && next.After(deadline) {
						return
					}
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					sched = next
					next = next.Add(interval)
				}
				w.step(sched, deadline)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Elapsed: elapsed}
	var lats []time.Duration
	for _, w := range workers {
		res.Ops += w.ops
		res.Errors += w.errs
		lats = append(lats, w.lats...)
		res.Writes = append(res.Writes, w.writes...)
	}
	res.P50, res.P99, res.P999 = percentiles(lats)
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	return res, nil
}

// paceInterval returns each client's fixed open-loop send interval for
// the aggregate target rate: Clients/Rate seconds, so the interleaved
// per-client schedules sum to Rate arrivals per second. Zero (closed
// loop) when no rate is set.
func paceInterval(clients int, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(clients) / rate * float64(time.Second))
}

// percentiles returns the p50/p99/p999 of lats (sorted in place; zeros
// when empty).
func percentiles(lats []time.Duration) (p50, p99, p999 time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 = lats[len(lats)*50/100]
	p99 = lats[min(len(lats)*99/100, len(lats)-1)]
	p999 = lats[min(len(lats)*999/1000, len(lats)-1)]
	return
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// step issues one operation and records its latency and outcome. An op
// completing after the deadline still counts (and its write record is
// kept for crash audits, keyed on AckTime), but its latency sample is
// dropped: it ran partly outside the measured window, and open-loop
// runs near the deadline would otherwise pollute the tail percentiles
// with arbitrarily-late in-flight completions.
func (w *worker) step(sched, deadline time.Time) {
	isRead := !w.cfg.RecordWrites && w.rng.Float64() < w.cfg.ReadFrac
	var (
		resp Resp
		err  error
		rec  WriteRecord
	)
	switch {
	case isRead:
		resp, err = w.cl.Do([]byte("GET"), w.key())
	case w.cfg.MultiEvery > 0 && w.cfg.MultiSize > 0 && w.ops%w.cfg.MultiEvery == w.cfg.MultiEvery-1:
		size := w.cfg.MultiSize
		sets := make([][2][]byte, size)
		val := w.value()
		for i := range sets {
			sets[i] = [2][]byte{w.writeKey(i), val}
			rec.Keys = append(rec.Keys, sets[i][0])
			rec.Vals = append(rec.Vals, val)
		}
		rec.Multi = true
		w.seq++
		resp, err = w.cl.Multi(sets)
	default:
		k, v := w.writeKey(0), w.value()
		rec.Keys = [][]byte{k}
		rec.Vals = [][]byte{v}
		w.seq++
		resp, err = w.cl.Do([]byte("SET"), k, v)
	}
	done := time.Now()
	lat := done.Sub(sched)
	w.ops++
	acked := err == nil && resp.IsOK()
	if !acked {
		w.errs++
	}
	if (acked || err == nil) && (deadline.IsZero() || !done.After(deadline)) {
		w.lats = append(w.lats, lat)
	}
	if w.cfg.RecordWrites && !isRead {
		rec.Acked = acked
		if acked {
			rec.AckTime = time.Now()
		}
		w.writes = append(w.writes, rec)
	}
}

// key draws a Zipfian read/write key.
func (w *worker) key() []byte {
	return []byte(fmt.Sprintf("key-%d", w.zipf.Uint64()))
}

// writeKey returns the target key for write number seq: unique per
// write in RecordWrites mode (plus a lane i for MULTI members),
// Zipfian otherwise.
func (w *worker) writeKey(i int) []byte {
	if w.cfg.RecordWrites {
		return []byte(fmt.Sprintf("c%d-s%d-k%d", w.id, w.seq, i))
	}
	return w.key()
}

// value builds the payload: unique and self-describing in RecordWrites
// mode, random bytes otherwise.
func (w *worker) value() []byte {
	if w.cfg.RecordWrites {
		return []byte(fmt.Sprintf("v-c%d-s%d", w.id, w.seq))
	}
	w.rng.Read(w.valBuf)
	out := make([]byte, len(w.valBuf))
	copy(out, w.valBuf)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AuditReport summarizes a post-recovery audit of a RecordWrites log.
type AuditReport struct {
	// Verified counts writes acked before the cut whose keys all read
	// back byte-exact.
	Verified int
	// Quarantined counts acked-before writes excused by detection: at
	// least one of their keys landed on a root the recovered store
	// reports corrupt.
	Quarantined int
	// Multis counts MULTI transactions checked for atomicity.
	Multis int
}

// AuditWrites replays a RecordWrites audit log against a recovered
// store — the fault-injection phase of the e2e crash test, where the
// crash image was damaged before reopen. lookup resolves one key to
// (value, present, err); a non-nil error means the key's root is
// quarantined, i.e. the corruption was *detected*. The audit then
// enforces the §13 contract: every write acknowledged before the cut
// either reads back byte-exact or is excused by detection, and every
// MULTI is all-or-nothing among its resolvable keys. The returned
// error describes the first silent violation.
func AuditWrites(writes []WriteRecord, cut time.Time, lookup func(k []byte) ([]byte, bool, error)) (AuditReport, error) {
	var rep AuditReport
	for _, w := range writes {
		if w.Acked && w.AckTime.Before(cut) {
			quarantined := false
			ok := true
			for i, k := range w.Keys {
				v, present, err := lookup(k)
				if err != nil {
					quarantined = true
					continue
				}
				if !present || !bytes.Equal(v, w.Vals[i]) {
					ok = false
					return rep, fmt.Errorf("loadgen: write %q acked before the cut lost without detection (present=%v)", k, present)
				}
			}
			switch {
			case quarantined:
				rep.Quarantined++
			case ok:
				rep.Verified++
			}
		}
		if w.Multi {
			present, absent := 0, 0
			for _, k := range w.Keys {
				_, p, err := lookup(k)
				if err != nil {
					continue // detected corruption: unresolvable, not a tear
				}
				if p {
					present++
				} else {
					absent++
				}
			}
			if present > 0 && absent > 0 {
				return rep, fmt.Errorf("loadgen: MULTI partially applied after recovery: %d keys present, %d missing", present, absent)
			}
			rep.Multis++
		}
	}
	return rep, nil
}
