// Package loadgen drives a modserver with an open-loop workload over
// real sockets or in-process pipes, measuring the latency distribution
// that the durability-before-reply contract produces. It doubles as the
// acked-write recorder for the server crash tests: in RecordWrites mode
// every write gets a unique key and value, and the result lists exactly
// which writes were acknowledged before the crash.
package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
)

// RespKind tags a parsed server reply.
type RespKind int

const (
	// RespSimple is a +status line.
	RespSimple RespKind = iota
	// RespError is a -error line.
	RespError
	// RespInt is a :n line.
	RespInt
	// RespBulk is a $len bulk string (Nil true for $-1).
	RespBulk
	// RespArray is a *n array of replies.
	RespArray
)

// Resp is one parsed server reply.
type Resp struct {
	Kind  RespKind
	Str   string // simple status or error text
	Int   int64
	Bulk  []byte
	Nil   bool
	Elems []Resp
}

// IsOK reports a +OK (or any non-error) acknowledgement.
func (r Resp) IsOK() bool { return r.Kind != RespError }

// Client is a minimal RESP client over one connection.
type Client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// Close closes the underlying connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Do sends one command (verb + args as an array of bulk strings) and
// reads one reply.
func (cl *Client) Do(args ...[]byte) (Resp, error) {
	if err := cl.send(args...); err != nil {
		return Resp{}, err
	}
	if err := cl.bw.Flush(); err != nil {
		return Resp{}, err
	}
	return cl.readResp()
}

// send serializes one command without flushing (for pipelined MULTI).
func (cl *Client) send(args ...[]byte) error {
	cl.bw.WriteByte('*')
	cl.bw.WriteString(strconv.Itoa(len(args)))
	cl.bw.WriteString("\r\n")
	for _, a := range args {
		cl.bw.WriteByte('$')
		cl.bw.WriteString(strconv.Itoa(len(a)))
		cl.bw.WriteString("\r\n")
		cl.bw.Write(a)
		cl.bw.WriteString("\r\n")
	}
	return nil
}

// Multi runs MULTI, the given SET commands, and EXEC pipelined as one
// round trip, returning the EXEC reply.
func (cl *Client) Multi(sets [][2][]byte) (Resp, error) {
	cl.send([]byte("MULTI"))
	for _, kv := range sets {
		cl.send([]byte("SET"), kv[0], kv[1])
	}
	cl.send([]byte("EXEC"))
	if err := cl.bw.Flush(); err != nil {
		return Resp{}, err
	}
	if _, err := cl.readResp(); err != nil { // +OK for MULTI
		return Resp{}, err
	}
	for range sets { // +QUEUED per SET
		if _, err := cl.readResp(); err != nil {
			return Resp{}, err
		}
	}
	return cl.readResp() // EXEC result
}

func (cl *Client) readLine() ([]byte, error) {
	line, err := cl.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("loadgen: malformed reply line %q", line)
	}
	return line[:len(line)-2], nil
}

func (cl *Client) readResp() (Resp, error) {
	line, err := cl.readLine()
	if err != nil {
		return Resp{}, err
	}
	if len(line) == 0 {
		return Resp{}, fmt.Errorf("loadgen: empty reply line")
	}
	body := string(line[1:])
	switch line[0] {
	case '+':
		return Resp{Kind: RespSimple, Str: body}, nil
	case '-':
		return Resp{Kind: RespError, Str: body}, nil
	case ':':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Resp{}, fmt.Errorf("loadgen: bad integer reply %q", body)
		}
		return Resp{Kind: RespInt, Int: n}, nil
	case '$':
		n, err := strconv.Atoi(body)
		if err != nil {
			return Resp{}, fmt.Errorf("loadgen: bad bulk length %q", body)
		}
		if n < 0 {
			return Resp{Kind: RespBulk, Nil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(cl.br, buf); err != nil {
			return Resp{}, err
		}
		return Resp{Kind: RespBulk, Bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.Atoi(body)
		if err != nil || n < 0 {
			return Resp{}, fmt.Errorf("loadgen: bad array length %q", body)
		}
		r := Resp{Kind: RespArray, Elems: make([]Resp, n)}
		for i := 0; i < n; i++ {
			e, err := cl.readResp()
			if err != nil {
				return Resp{}, err
			}
			r.Elems[i] = e
		}
		return r, nil
	default:
		return Resp{}, fmt.Errorf("loadgen: unknown reply type %q", line)
	}
}
