package loadgen

import (
	"bufio"
	"errors"
	"io"
	"math/rand"
	"net"
	"strconv"
	"testing"
	"time"
)

// fakeServer speaks just enough RESP to ack every command with +OK,
// optionally sleeping before each reply to simulate a slow store.
type fakeServer struct {
	delay time.Duration
}

func (fs *fakeServer) dial() (net.Conn, error) {
	client, server := net.Pipe()
	go fs.serve(server)
	return client, nil
}

func (fs *fakeServer) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		if err := discardCommand(br); err != nil {
			return
		}
		if fs.delay > 0 {
			time.Sleep(fs.delay)
		}
		if _, err := c.Write([]byte("+OK\r\n")); err != nil {
			return
		}
	}
}

// discardCommand consumes one *N array-of-bulk-strings command.
func discardCommand(br *bufio.Reader) error {
	line, err := br.ReadString('\n')
	if err != nil {
		return err
	}
	if len(line) < 4 || line[0] != '*' {
		return errors.New("bad command header")
	}
	n, err := strconv.Atoi(line[1 : len(line)-2])
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		hdr, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		if len(hdr) < 4 || hdr[0] != '$' {
			return errors.New("bad bulk header")
		}
		sz, err := strconv.Atoi(hdr[1 : len(hdr)-2])
		if err != nil {
			return err
		}
		if _, err := io.CopyN(io.Discard, br, int64(sz)+2); err != nil {
			return err
		}
	}
	return nil
}

func TestPaceInterval(t *testing.T) {
	for _, tc := range []struct {
		clients int
		rate    float64
		want    time.Duration
	}{
		{1, 0, 0},  // closed loop
		{8, -1, 0}, // closed loop
		{1, 1000, time.Millisecond},
		{4, 1000, 4 * time.Millisecond}, // C clients share the schedule
		{2, 500, 4 * time.Millisecond},
	} {
		if got := paceInterval(tc.clients, tc.rate); got != tc.want {
			t.Errorf("paceInterval(%d, %g) = %v, want %v", tc.clients, tc.rate, got, tc.want)
		}
	}
}

func TestPercentiles(t *testing.T) {
	if p50, p99, p999 := percentiles(nil); p50 != 0 || p99 != 0 || p999 != 0 {
		t.Fatalf("empty percentiles = %v %v %v", p50, p99, p999)
	}
	one := []time.Duration{7 * time.Millisecond}
	if p50, p99, p999 := percentiles(one); p50 != one[0] || p99 != one[0] || p999 != one[0] {
		t.Fatalf("single-sample percentiles = %v %v %v", p50, p99, p999)
	}
	// 1..1000 ms, shuffled: p50=501ms (index 500), p99=991ms, p999=1000ms.
	lats := make([]time.Duration, 1000)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	rand.New(rand.NewSource(1)).Shuffle(len(lats), func(i, j int) { lats[i], lats[j] = lats[j], lats[i] })
	p50, p99, p999 := percentiles(lats)
	if p50 != 501*time.Millisecond || p99 != 991*time.Millisecond || p999 != 1000*time.Millisecond {
		t.Fatalf("percentiles = %v %v %v", p50, p99, p999)
	}
}

// TestZipfSkew pins that the configured key popularity really is
// Zipfian: the hottest key dominates a uniform draw by orders of
// magnitude.
func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.5, 1, 1<<16-1)
	const draws = 20000
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[zipf.Uint64()]++
	}
	// Uniform would give each key ~0.3 hits; s=1.5 puts ~38% on key 0.
	if counts[0] < draws/10 {
		t.Fatalf("key 0 drawn %d/%d times; distribution not skewed", counts[0], draws)
	}
	if len(counts) > 1<<12 {
		t.Fatalf("%d distinct keys in %d draws; tail too heavy for s=1.5", len(counts), draws)
	}
}

// TestDeadlineCutsSchedule pins the open-loop deadline fix: a send
// scheduled past the deadline is never issued, so a 50ms run at 20ms
// intervals does at most the 3 in-window sends (0, 20, 40ms) and does
// not sleep into the 60ms slot.
func TestDeadlineCutsSchedule(t *testing.T) {
	fs := &fakeServer{}
	res, err := Run(fs.dial, Config{
		Clients:  1,
		Rate:     50, // 20ms interval
		Duration: 50 * time.Millisecond,
		Seed:     1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 1 || res.Ops > 3 {
		t.Fatalf("ops = %d, want 1..3 (sends at 0/20/40ms only)", res.Ops)
	}
	if res.Elapsed > 300*time.Millisecond {
		t.Fatalf("run overslept the deadline: elapsed %v", res.Elapsed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

// TestNoLatencySampleAfterDeadline pins the second half of the fix: an
// op completing after the deadline still counts as an op (and its write
// record survives for crash audits) but contributes no latency sample,
// so a slow in-flight tail cannot skew p999.
func TestNoLatencySampleAfterDeadline(t *testing.T) {
	fs := &fakeServer{delay: 80 * time.Millisecond}
	res, err := Run(fs.dial, Config{
		Clients:      1,
		Duration:     20 * time.Millisecond, // expires while op 1 is in flight
		Seed:         1,
		RecordWrites: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 1 {
		t.Fatalf("ops = %d, want at least the in-flight op", res.Ops)
	}
	if res.P50 != 0 || res.P99 != 0 || res.P999 != 0 {
		t.Fatalf("latency sampled after the deadline: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if len(res.Writes) != res.Ops {
		t.Fatalf("audit log has %d records for %d ops", len(res.Writes), res.Ops)
	}
	for _, w := range res.Writes {
		if !w.Acked || w.AckTime.IsZero() {
			t.Fatal("post-deadline completion lost its ack record")
		}
	}
}

// TestRunAgainstFakeServer is the plain happy path: a paced mixed run
// completes with samples and no errors.
func TestRunAgainstFakeServer(t *testing.T) {
	fs := &fakeServer{delay: time.Millisecond}
	res, err := Run(fs.dial, Config{
		Clients:    4,
		Ops:        40,
		KeySpace:   128,
		ReadFrac:   0.5,
		MultiEvery: 4,
		MultiSize:  2,
		Seed:       7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 40 {
		t.Fatalf("ops = %d, want 40", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.P50 <= 0 || res.Throughput <= 0 {
		t.Fatalf("p50=%v throughput=%v", res.P50, res.Throughput)
	}
}

// Audit-log classification against a deterministic recovered-state
// lookup: acked-durable, detected (quarantined), lost-without-detection,
// and MULTI atomicity.
func TestAuditWritesClassification(t *testing.T) {
	cut := time.Unix(1000, 0)
	before, after := cut.Add(-time.Second), cut.Add(time.Second)
	rec := func(acked bool, at time.Time, multi bool, keys ...string) WriteRecord {
		w := WriteRecord{Multi: multi, Acked: acked, AckTime: at}
		for _, k := range keys {
			w.Keys = append(w.Keys, []byte(k))
			w.Vals = append(w.Vals, []byte("val-"+k))
		}
		return w
	}
	store := map[string]string{
		"good": "val-good", "m1": "val-m1", "m2": "val-m2",
	}
	lookup := func(k []byte) ([]byte, bool, error) {
		if string(k) == "poisoned" {
			return nil, false, errors.New("root quarantined")
		}
		v, ok := store[string(k)]
		return []byte(v), ok, nil
	}

	rep, err := AuditWrites([]WriteRecord{
		rec(true, before, false, "good"),          // verified
		rec(true, before, false, "poisoned"),      // excused by detection
		rec(true, after, false, "vanished"),       // acked after cut: exempt
		rec(false, time.Time{}, false, "unacked"), // never acked: exempt
		rec(true, before, true, "m1", "m2"),       // atomic MULTI, all present
		rec(false, time.Time{}, true, "g1", "g2"), // atomic MULTI, all absent
	}, cut, lookup)
	if err != nil {
		t.Fatalf("clean audit failed: %v", err)
	}
	if rep.Verified != 2 || rep.Quarantined != 1 || rep.Multis != 2 {
		t.Fatalf("report = %+v, want Verified=2 Quarantined=1 Multis=2", rep)
	}

	// An acked-before-cut write missing without detection is the §13
	// violation the audit exists to catch.
	if _, err := AuditWrites([]WriteRecord{rec(true, before, false, "vanished")}, cut, lookup); err == nil {
		t.Fatal("silent loss passed the audit")
	}
	// A MULTI with some keys present and some absent is a torn
	// transaction regardless of ack state.
	if _, err := AuditWrites([]WriteRecord{rec(false, time.Time{}, true, "m1", "gone")}, cut, lookup); err == nil {
		t.Fatal("torn MULTI passed the audit")
	}
}
