package server

import (
	"net"
	"sync"
)

// PipeListener is an in-process net.Listener over net.Pipe pairs, so
// the full server stack — RESP parsing, middleware, durability waits,
// graceful shutdown — runs in tests and CI without binding a TCP port.
// Dial returns the client end of a new connection; Accept hands the
// server end to Serve.
type PipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// NewPipeListener returns a ready-to-use in-process listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Dial opens a new in-process connection to the listener, blocking
// until Accept picks up the server end.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.ch <- srv:
		return client, nil
	case <-l.done:
		client.Close()
		srv.Close()
		return nil, net.ErrClosed
	}
}

// Accept waits for the server end of the next Dial.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unblocks Accept and fails subsequent Dials.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener with a synthetic address.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

var _ net.Listener = (*PipeListener)(nil)
