package cachesim

import "sync"

// Hierarchy models the full cache stack of the paper's machine (Table 1:
// 32 KB L1D, 1 MB L2, 33 MB shared L3). Where an access hits determines
// the latency the device charges; without the outer levels, every L1 miss
// would pay the full PM latency and pointer-chasing structures would be
// overcharged at sub-paper working-set sizes.
//
// All levels are inclusive, LRU, write-allocate. A Hierarchy is safe for
// concurrent use: one internal mutex serializes accesses, modeling a
// single shared cache stack the way the device serializes the arena.

// Level geometry (bytes, ways) for L2 and L3.
const (
	L2SizeBytes = 1 << 20
	L2Ways      = 16
	L3SizeBytes = 32 << 20
	L3Ways      = 16
)

// Where identifies the level that served an access.
type Where int

// Access outcomes, nearest to farthest.
const (
	InL1 Where = iota
	InL2
	InL3
	InMem
)

// level is one set-associative cache level.
type level struct {
	sets int
	ways int
	tags []uint64 // line+1; 0 invalid
	age  []uint32
	tick uint32
}

func newLevel(sizeBytes, ways int) *level {
	sets := sizeBytes / LineSize / ways
	return &level{
		sets: sets,
		ways: ways,
		tags: make([]uint64, sets*ways),
		age:  make([]uint32, sets*ways),
	}
}

// access probes and fills the level, reporting a hit.
func (l *level) access(line uint64) bool {
	set := int(line % uint64(l.sets))
	base := set * l.ways
	tag := line + 1
	l.tick++
	victim := base
	best := l.age[base]
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.tags[i] == tag {
			l.age[i] = l.tick
			return true
		}
		if l.tags[i] == 0 {
			victim = i
			best = 0
			continue
		}
		if l.age[i] < best {
			best = l.age[i]
			victim = i
		}
	}
	l.tags[victim] = tag
	l.age[victim] = l.tick
	return false
}

// HierarchyStats counts hits per level.
type HierarchyStats struct {
	L1Hits, L2Hits, L3Hits, MemAccesses uint64
}

// Sub returns s - base counter-wise.
func (s HierarchyStats) Sub(base HierarchyStats) HierarchyStats {
	return HierarchyStats{
		L1Hits:      s.L1Hits - base.L1Hits,
		L2Hits:      s.L2Hits - base.L2Hits,
		L3Hits:      s.L3Hits - base.L3Hits,
		MemAccesses: s.MemAccesses - base.MemAccesses,
	}
}

// Add returns s + o counter-wise, for aggregating region-split devices.
func (s HierarchyStats) Add(o HierarchyStats) HierarchyStats {
	return HierarchyStats{
		L1Hits:      s.L1Hits + o.L1Hits,
		L2Hits:      s.L2Hits + o.L2Hits,
		L3Hits:      s.L3Hits + o.L3Hits,
		MemAccesses: s.MemAccesses + o.MemAccesses,
	}
}

// Hierarchy is the three-level cache model.
type Hierarchy struct {
	mu    sync.Mutex
	l1    *L1
	l2    *level
	l3    *level
	stats HierarchyStats
}

// NewHierarchy returns an empty cache stack.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{l1: NewL1(), l2: newLevel(L2SizeBytes, L2Ways), l3: newLevel(L3SizeBytes, L3Ways)}
}

// Access touches the line and returns the level that served it, filling
// all nearer levels.
func (h *Hierarchy) Access(line uint64, write bool) Where {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.l1.Access(line, write) {
		h.stats.L1Hits++
		return InL1
	}
	if h.l2.access(line) {
		h.stats.L2Hits++
		return InL2
	}
	if h.l3.access(line) {
		h.stats.L3Hits++
		return InL3
	}
	h.stats.MemAccesses++
	return InMem
}

// L1Stats returns the L1D hit/miss counters (the Fig. 11 metric).
func (h *Hierarchy) L1Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.l1.Stats()
}

// Stats returns per-level counters.
func (h *Hierarchy) Stats() HierarchyStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}
