// Package cachesim models the L1 data cache of the paper's test machine
// (Table 1: 32 KB, 64 B lines; Cascade Lake L1D is 8-way set associative).
// It exists to regenerate Fig. 11 (L1D miss ratios) and to give pointer-
// chasing functional datastructures their cache-pressure cost (§6.5).
//
// The model is a write-allocate, LRU, physically-indexed cache over line
// indices. It tracks hits and misses; replacement writebacks are not
// modeled separately because the paper's flushing costs are charged
// explicitly via clwb/sfence.
package cachesim

// Geometry of the modeled L1D.
const (
	SizeBytes = 32 << 10
	LineSize  = 64
	Ways      = 8
	Sets      = SizeBytes / LineSize / Ways
)

// Stats counts cache accesses.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns the total access count.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRatio returns misses / accesses, or 0 for an idle cache.
func (s Stats) MissRatio() float64 {
	if t := s.Accesses(); t > 0 {
		return float64(s.Misses) / float64(t)
	}
	return 0
}

// Sub returns s - base, counter-wise.
func (s Stats) Sub(base Stats) Stats {
	return Stats{Hits: s.Hits - base.Hits, Misses: s.Misses - base.Misses}
}

// Add returns s + o, counter-wise, for aggregating region-split devices.
func (s Stats) Add(o Stats) Stats {
	return Stats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

// L1 is a set-associative cache over 64-byte line indices.
type L1 struct {
	tags  [Sets][Ways]uint64 // line index + 1; 0 = invalid
	age   [Sets][Ways]uint32 // larger = more recently used
	tick  uint32
	stats Stats
}

// NewL1 returns an empty cache.
func NewL1() *L1 { return &L1{} }

// Access touches the given line and reports whether it hit. A miss fills
// the line, evicting the LRU way of its set. The write flag only affects
// accounting semantics for callers; the fill policy is write-allocate
// either way.
func (c *L1) Access(line uint64, write bool) bool {
	set := line % Sets
	tag := line + 1
	c.tick++
	ways := &c.tags[set]
	ages := &c.age[set]
	for w := 0; w < Ways; w++ {
		if ways[w] == tag {
			ages[w] = c.tick
			c.stats.Hits++
			return true
		}
	}
	// Miss: replace LRU (or first invalid) way.
	victim := 0
	best := ages[0]
	for w := 0; w < Ways; w++ {
		if ways[w] == 0 {
			victim = w
			break
		}
		if ages[w] < best {
			best = ages[w]
			victim = w
		}
	}
	ways[victim] = tag
	ages[victim] = c.tick
	c.stats.Misses++
	return false
}

// Contains reports whether the line is currently cached, without updating
// LRU state or stats.
func (c *L1) Contains(line uint64) bool {
	set := line % Sets
	tag := line + 1
	for w := 0; w < Ways; w++ {
		if c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Stats returns the access counters.
func (c *L1) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *L1) Reset() { *c = L1{} }
