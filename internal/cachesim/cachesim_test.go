package cachesim

import "testing"

func TestColdMissThenHit(t *testing.T) {
	c := NewL1()
	if c.Access(5, false) {
		t.Fatal("first access must miss")
	}
	if !c.Access(5, true) {
		t.Fatal("second access must hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetConflictEvictsLRU(t *testing.T) {
	c := NewL1()
	// Fill one set with Ways conflicting lines (stride = Sets lines).
	for w := 0; w < Ways; w++ {
		c.Access(uint64(w)*Sets, false)
	}
	// Touch line 0 so it is the MRU way.
	c.Access(0, false)
	// Insert one more conflicting line: should evict the LRU (line Sets).
	c.Access(uint64(Ways)*Sets, false)
	if !c.Contains(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(Sets) {
		t.Fatal("LRU line not evicted")
	}
}

func TestDistinctSetsDoNotConflict(t *testing.T) {
	c := NewL1()
	for ln := uint64(0); ln < Sets; ln++ {
		c.Access(ln, false)
	}
	for ln := uint64(0); ln < Sets; ln++ {
		if !c.Contains(ln) {
			t.Fatalf("line %d evicted without set pressure", ln)
		}
	}
}

func TestMissRatio(t *testing.T) {
	c := NewL1()
	for i := 0; i < 10; i++ {
		c.Access(1, false)
	}
	got := c.Stats().MissRatio()
	if got != 0.1 {
		t.Fatalf("MissRatio = %v, want 0.1", got)
	}
	if (Stats{}).MissRatio() != 0 {
		t.Fatal("empty stats must have zero miss ratio")
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := NewL1()
	lines := uint64(2 * SizeBytes / LineSize)
	for pass := 0; pass < 2; pass++ {
		for ln := uint64(0); ln < lines; ln++ {
			c.Access(ln, false)
		}
	}
	if r := c.Stats().MissRatio(); r < 0.9 {
		t.Fatalf("sequential thrash miss ratio = %v, want ≈1", r)
	}
}

func TestReset(t *testing.T) {
	c := NewL1()
	c.Access(1, true)
	c.Reset()
	if c.Stats().Accesses() != 0 || c.Contains(1) {
		t.Fatal("Reset must clear contents and stats")
	}
}

func TestStatsSub(t *testing.T) {
	c := NewL1()
	c.Access(1, false)
	base := c.Stats()
	c.Access(1, false)
	c.Access(2, false)
	d := c.Stats().Sub(base)
	if d.Hits != 1 || d.Misses != 1 {
		t.Fatalf("delta = %+v", d)
	}
}
