package funcds

import (
	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Queue is a purely functional FIFO queue of 8-byte elements, implemented
// as the classic two-list (banker's) queue: elements are enqueued onto a
// rear cons list and dequeued from a front cons list; when the front list
// is exhausted, the rear list is reversed into a fresh front list. The
// reversal is why "pop operations in the MOD queue occasionally require a
// reversal of one of the internal linked lists resulting in greater
// flushing activity" (§6.4).
//
// Layout:
//
//	header (TagQueueHdr): [front u64][rear u64][frontLen u64][rearLen u64]
//	nodes reuse TagListNode from the stack.
type Queue struct {
	h    *alloc.Heap
	addr pmem.Addr
	ed   *alloc.Edit
	sel  bool // selective persistence: volatile cons cells, record chain (record.go)
}

const queueHdrSize = 32

// NewQueue allocates an empty durable queue (flushed, not fenced).
func NewQueue(h *alloc.Heap) Queue {
	a := h.AllocNode(queueHdrSize, TagQueueHdr)
	h.Device().Zero(a, queueHdrSize)
	h.SealNode(a, queueHdrSize)
	return Queue{h: h, addr: a}
}

// NewQueueSelective allocates an empty selectively persisted queue: cons
// cells stay volatile-clean, every update appends a durable record cell,
// and the checkpoint clone starts as an empty normal queue.
func NewQueueSelective(h *alloc.Heap) Queue {
	ckpt := NewQueue(h).Addr()
	a := h.AllocNode(queueHdrSize+selExtSize, TagQueueHdrSel)
	h.Device().Zero(a, queueHdrSize)
	writeSelExt(h, a, queueHdrSize, ckpt, pmem.Nil, 0)
	h.SealNode(a, queueHdrSize+selExtSize)
	return Queue{h: h, addr: a, sel: true}
}

// QueueAt adopts an existing queue header, e.g. after recovery. The
// selective variant is recognized by its tag.
func QueueAt(h *alloc.Heap, addr pmem.Addr) Queue {
	return Queue{h: h, addr: addr, sel: h.Tag(addr) == TagQueueHdrSel}
}

// WithEdit binds the version to a per-FASE edit context (DESIGN.md §8).
func (q Queue) WithEdit(ed *alloc.Edit) Queue {
	return Queue{h: q.h, addr: q.addr, ed: ed, sel: q.sel}
}

// Addr returns the header address of this version.
func (q Queue) Addr() pmem.Addr { return q.addr }

// Heap returns the owning heap.
func (q Queue) Heap() *alloc.Heap { return q.h }

func (q Queue) fields() (front, rear pmem.Addr, flen, rlen uint64) {
	dev := q.h.Device()
	return pmem.Addr(dev.ReadU64(q.addr)), pmem.Addr(dev.ReadU64(q.addr + 8)),
		dev.ReadU64(q.addr + 16), dev.ReadU64(q.addr + 24)
}

// Len returns the number of elements.
func (q Queue) Len() uint64 {
	_, _, flen, rlen := q.fields()
	return flen + rlen
}

func newQueueHdr(h *alloc.Heap, ed *alloc.Edit, front, rear pmem.Addr, flen, rlen uint64) pmem.Addr {
	a := nodeAlloc(h, ed, queueHdrSize, TagQueueHdr, false)
	dev := h.Device()
	dev.WriteU64(a, uint64(front))
	dev.WriteU64(a+8, uint64(rear))
	dev.WriteU64(a+16, flen)
	dev.WriteU64(a+24, rlen)
	flushNode(h, ed, a, queueHdrSize, false)
	return a
}

// hdrInPlace rewrites an edit-owned queue header, releasing the header's
// references to the displaced old front/rear list heads. Selective queues
// additionally install rec at the head of the record chain.
func (q Queue) hdrInPlace(front, rear pmem.Addr, flen, rlen uint64, rec pmem.Addr, release ...pmem.Addr) Queue {
	dev := q.h.Device()
	dev.WriteU64(q.addr, uint64(front))
	dev.WriteU64(q.addr+8, uint64(rear))
	dev.WriteU64(q.addr+16, flen)
	dev.WriteU64(q.addr+24, rlen)
	size := queueHdrSize
	if q.sel {
		ckpt, oldRec, recCount := readSelExt(q.h, q.addr, queueHdrSize)
		writeSelExt(q.h, q.addr, queueHdrSize, ckpt, rec, recCount+1)
		size += selExtSize
		if oldRec != pmem.Nil {
			q.h.Release(oldRec)
		}
	}
	recordEdit(q.ed, q.addr, size, false)
	for _, r := range release {
		q.h.Release(r)
	}
	return q
}

// hdrFresh produces a new queue header (normal or selective per the
// receiver); changed-child references transfer in, unchanged ones must
// have been retained by the caller.
func (q Queue) hdrFresh(front, rear pmem.Addr, flen, rlen uint64, rec pmem.Addr) Queue {
	if q.sel {
		ckpt, _, recCount := readSelExt(q.h, q.addr, queueHdrSize)
		hdr := nodeAlloc(q.h, q.ed, queueHdrSize+selExtSize, TagQueueHdrSel, false)
		dev := q.h.Device()
		dev.WriteU64(hdr, uint64(front))
		dev.WriteU64(hdr+8, uint64(rear))
		dev.WriteU64(hdr+16, flen)
		dev.WriteU64(hdr+24, rlen)
		writeSelExt(q.h, hdr, queueHdrSize, ckpt, rec, recCount+1)
		flushNode(q.h, q.ed, hdr, queueHdrSize+selExtSize, false)
		q.h.Retain(ckpt)
		return Queue{h: q.h, addr: hdr, ed: q.ed, sel: true}
	}
	hdr := newQueueHdr(q.h, q.ed, front, rear, flen, rlen)
	return Queue{h: q.h, addr: hdr, ed: q.ed}
}

// Push returns a new version with val appended at the tail.
func (q Queue) Push(val uint64) Queue {
	front, rear, flen, rlen := q.fields()
	rec := pmem.Nil
	if q.sel {
		_, oldRec, _ := readSelExt(q.h, q.addr, queueHdrSize)
		rec = newRecord(q.h, q.ed, oldRec, RecQueuePush, val, 0)
	}
	node := newListNode(q.h, q.ed, q.sel, rear, val) // retains old rear
	if q.ed.Owns(q.addr) {
		// The header's reference to the old rear moved into the node.
		return q.hdrInPlace(front, node, flen, rlen+1, rec, rear)
	}
	q.h.Retain(front)
	return q.hdrFresh(front, node, flen, rlen+1, rec)
}

// Pop returns a new version without the head element, the element, and
// whether the queue was non-empty.
func (q Queue) Pop() (Queue, uint64, bool) {
	front, rear, flen, rlen := q.fields()
	dev := q.h.Device()
	if flen == 0 && rlen == 0 {
		return q, 0, false
	}
	rec := pmem.Nil
	if q.sel {
		_, oldRec, _ := readSelExt(q.h, q.addr, queueHdrSize)
		rec = newRecord(q.h, q.ed, oldRec, RecQueuePop, 0, 0)
	}
	if flen > 0 {
		next := pmem.Addr(dev.ReadU64(front))
		val := dev.ReadU64(front + 8)
		q.h.Retain(next)
		if q.ed.Owns(q.addr) {
			return q.hdrInPlace(next, rear, flen-1, rlen, rec, front), val, true
		}
		q.h.Retain(rear)
		return q.hdrFresh(next, rear, flen-1, rlen, rec), val, true
	}
	// Front exhausted: reverse the rear list into a new front list,
	// excluding the oldest node, whose value is the pop result. The new
	// nodes are fresh allocations; nothing of the old version is reused.
	var newFront pmem.Addr
	cur := rear
	for {
		next := pmem.Addr(dev.ReadU64(cur))
		if next == pmem.Nil {
			break // cur is the oldest element
		}
		newFront = newListNode(q.h, q.ed, q.sel, newFront, dev.ReadU64(cur+8))
		// newListNode retained newFront; drop the extra reference so the
		// chain is singly owned by its successor.
		if prev := pmem.Addr(dev.ReadU64(newFront)); prev != pmem.Nil {
			q.h.Release(prev)
		}
		cur = next
	}
	val := dev.ReadU64(cur + 8)
	if q.ed.Owns(q.addr) {
		// The new front transfers in; the header's reference to the old
		// rear chain drops (its values live on in the new front).
		return q.hdrInPlace(newFront, pmem.Nil, rlen-1, 0, rec, rear), val, true
	}
	return q.hdrFresh(newFront, pmem.Nil, rlen-1, 0, rec), val, true
}

// Peek returns the head element without modifying the queue.
func (q Queue) Peek() (uint64, bool) {
	front, rear, flen, rlen := q.fields()
	dev := q.h.Device()
	if flen > 0 {
		return dev.ReadU64(front + 8), true
	}
	if rlen == 0 {
		return 0, false
	}
	// Oldest element is the tail of the rear list.
	cur := rear
	for {
		next := pmem.Addr(dev.ReadU64(cur))
		if next == pmem.Nil {
			return dev.ReadU64(cur + 8), true
		}
		cur = next
	}
}

// Elements returns the queue contents from head to tail (for tests).
func (q Queue) Elements() []uint64 {
	front, rear, _, _ := q.fields()
	dev := q.h.Device()
	var out []uint64
	for n := front; n != pmem.Nil; n = pmem.Addr(dev.ReadU64(n)) {
		out = append(out, dev.ReadU64(n+8))
	}
	var rev []uint64
	for n := rear; n != pmem.Nil; n = pmem.Addr(dev.ReadU64(n)) {
		rev = append(rev, dev.ReadU64(n+8))
	}
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

func walkQueueHdr(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	dev := h.Device()
	if front := pmem.Addr(dev.ReadU64(a)); front != pmem.Nil {
		visit(front)
	}
	if rear := pmem.Addr(dev.ReadU64(a + 8)); rear != pmem.Nil {
		visit(rear)
	}
}
