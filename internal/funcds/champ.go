package funcds

import (
	"encoding/binary"
	"math/bits"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Map is a purely functional hash map from byte-string keys to byte-string
// values, implemented as a Compressed Hash-Array Mapped Prefix-tree
// (CHAMP, Steindorfer & Vinju), the structure the paper uses for its map
// and set datastructures (§4.2). Nodes carry two bitmaps — one for inline
// key/value entries, one for child nodes — so the trie is broad (32-way)
// but shallow, and an update path-copies only O(log32 n) small nodes.
//
// Layouts:
//
//	header    (TagMapHdr):       [count u64][root u64]
//	node      (TagMapNode):      [dataMap u32][nodeMap u32]
//	                             d × [keyBlob u64][valBlob u64]
//	                             c × [child u64]
//	collision (TagMapCollision): [n u32][pad u32] n × [keyBlob u64][valBlob u64]
//
// Keys and values are boxed in Blob blocks; a set stores Nil value slots.
type Map struct {
	h    *alloc.Heap
	addr pmem.Addr
	ed   *alloc.Edit
	sel  bool // selective persistence: volatile trie, record chain (record.go)
}

const (
	mapHdrSize = 16
	// collisionShift is the trie depth at which the 64-bit hash is
	// exhausted and equal-hash keys fall into a collision bucket.
	collisionShift = 60
)

type mapEntry struct{ key, val pmem.Addr }

// NewMap allocates an empty durable map (flushed, not fenced).
func NewMap(h *alloc.Heap) Map {
	a := h.AllocNode(mapHdrSize, TagMapHdr)
	h.Device().Zero(a, mapHdrSize)
	h.SealNode(a, mapHdrSize)
	return Map{h: h, addr: a}
}

// NewMapSelective allocates an empty selectively persisted map: trie nodes
// stay volatile-clean, every update appends a durable record cell, and the
// checkpoint clone starts as an empty normal map (flushed, not fenced).
func NewMapSelective(h *alloc.Heap) Map {
	ckpt := NewMap(h).Addr()
	a := h.AllocNode(mapHdrSize+selExtSize, TagMapHdrSel)
	h.Device().Zero(a, mapHdrSize)
	writeSelExt(h, a, mapHdrSize, ckpt, pmem.Nil, 0)
	h.SealNode(a, mapHdrSize+selExtSize)
	return Map{h: h, addr: a, sel: true}
}

// MapAt adopts an existing map header, e.g. after recovery. The selective
// variant is recognized by its tag.
func MapAt(h *alloc.Heap, addr pmem.Addr) Map {
	return Map{h: h, addr: addr, sel: h.Tag(addr) == TagMapHdrSel}
}

// WithEdit binds the version to a per-FASE edit context (DESIGN.md §8).
func (m Map) WithEdit(ed *alloc.Edit) Map {
	return Map{h: m.h, addr: m.addr, ed: ed, sel: m.sel}
}

// Addr returns the header address of this version.
func (m Map) Addr() pmem.Addr { return m.addr }

// Heap returns the owning heap.
func (m Map) Heap() *alloc.Heap { return m.h }

// Len returns the number of entries.
func (m Map) Len() uint64 { return m.h.Device().ReadU64(m.addr) }

func (m Map) root() pmem.Addr { return pmem.Addr(m.h.Device().ReadU64(m.addr + 8)) }

func newMapHdr(h *alloc.Heap, ed *alloc.Edit, count uint64, root pmem.Addr) pmem.Addr {
	a := nodeAlloc(h, ed, mapHdrSize, TagMapHdr, false)
	dev := h.Device()
	dev.WriteU64(a, count)
	dev.WriteU64(a+8, uint64(root))
	flushNode(h, ed, a, mapHdrSize, false)
	return a
}

// setHdr produces a map header with the given count and root: an in-place
// rewrite when the receiver's header is edit-owned (releasing its
// reference to a displaced old root), a fresh header otherwise. The new
// root's reference transfers in. Selective maps additionally install rec
// at the head of the record chain (rec already holds a reference on the
// previous head, so the old header's own reference is dropped in the
// in-place case).
func (m Map) setHdr(count uint64, newRoot, oldRoot, rec pmem.Addr) Map {
	if m.ed.Owns(m.addr) {
		dev := m.h.Device()
		dev.WriteU64(m.addr, count)
		dev.WriteU64(m.addr+8, uint64(newRoot))
		size := mapHdrSize
		if m.sel {
			ckpt, oldRec, recCount := readSelExt(m.h, m.addr, mapHdrSize)
			writeSelExt(m.h, m.addr, mapHdrSize, ckpt, rec, recCount+1)
			size += selExtSize
			if oldRec != pmem.Nil {
				m.h.Release(oldRec)
			}
		}
		recordEdit(m.ed, m.addr, size, false)
		if newRoot != oldRoot {
			m.h.Release(oldRoot)
		}
		return m
	}
	if newRoot == oldRoot && newRoot != pmem.Nil {
		// Deep in-place update left the root pointer unchanged; the new
		// header is a second parent.
		m.h.Retain(newRoot)
	}
	if m.sel {
		ckpt, _, recCount := readSelExt(m.h, m.addr, mapHdrSize)
		hdr := nodeAlloc(m.h, m.ed, mapHdrSize+selExtSize, TagMapHdrSel, false)
		dev := m.h.Device()
		dev.WriteU64(hdr, count)
		dev.WriteU64(hdr+8, uint64(newRoot))
		writeSelExt(m.h, hdr, mapHdrSize, ckpt, rec, recCount+1)
		flushNode(m.h, m.ed, hdr, mapHdrSize+selExtSize, false)
		m.h.Retain(ckpt)
		return Map{h: m.h, addr: hdr, ed: m.ed, sel: true}
	}
	hdr := newMapHdr(m.h, m.ed, count, newRoot)
	return Map{h: m.h, addr: hdr, ed: m.ed}
}

// readMapNode loads a trie node into volatile form with bulk accesses,
// served from the DRAM node cache when it is enabled (edit-owned nodes —
// still mutable this FASE — bypass it).
func readMapNode(h *alloc.Heap, ed *alloc.Edit, a pmem.Addr) (dataMap, nodeMap uint32, entries []mapEntry, children []pmem.Addr) {
	hdr := h.ReadCached(a, 8, ed)
	dataMap = binary.LittleEndian.Uint32(hdr)
	nodeMap = binary.LittleEndian.Uint32(hdr[4:])
	d := bits.OnesCount32(dataMap)
	c := bits.OnesCount32(nodeMap)
	var body []byte
	if n := d*16 + c*8; n > 0 {
		// Re-read the whole node under its block-start key: the cache is
		// invalidated by payload address on free, so a separate entry keyed
		// mid-block would survive free-and-reallocate and serve stale bytes.
		body = h.ReadCached(a, 8+n, ed)[8:]
	}
	entries = make([]mapEntry, d)
	for i := 0; i < d; i++ {
		entries[i] = mapEntry{
			pmem.Addr(binary.LittleEndian.Uint64(body[i*16:])),
			pmem.Addr(binary.LittleEndian.Uint64(body[i*16+8:])),
		}
	}
	children = make([]pmem.Addr, c)
	for i := 0; i < c; i++ {
		children[i] = pmem.Addr(binary.LittleEndian.Uint64(body[d*16+i*8:]))
	}
	return dataMap, nodeMap, entries, children
}

// buildMapNode allocates, writes, and flushes a trie node (volatile under
// selective persistence). Reference transfers are the caller's
// responsibility.
func buildMapNode(h *alloc.Heap, ed *alloc.Edit, vol bool, dataMap, nodeMap uint32, entries []mapEntry, children []pmem.Addr) pmem.Addr {
	size := 8 + len(entries)*16 + len(children)*8
	a := nodeAlloc(h, ed, size, TagMapNode, vol)
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, dataMap)
	binary.LittleEndian.PutUint32(buf[4:], nodeMap)
	for i, e := range entries {
		binary.LittleEndian.PutUint64(buf[8+i*16:], uint64(e.key))
		binary.LittleEndian.PutUint64(buf[8+i*16+8:], uint64(e.val))
	}
	base := 8 + len(entries)*16
	for i, c := range children {
		binary.LittleEndian.PutUint64(buf[base+i*8:], uint64(c))
	}
	dev := h.Device()
	dev.Write(a, buf)
	flushNode(h, ed, a, size, vol)
	return a
}

// buildCollision allocates, writes, and flushes a collision bucket
// (volatile under selective persistence).
func buildCollision(h *alloc.Heap, ed *alloc.Edit, vol bool, entries []mapEntry) pmem.Addr {
	size := 8 + len(entries)*16
	a := nodeAlloc(h, ed, size, TagMapCollision, vol)
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(entries)))
	for i, e := range entries {
		binary.LittleEndian.PutUint64(buf[8+i*16:], uint64(e.key))
		binary.LittleEndian.PutUint64(buf[8+i*16+8:], uint64(e.val))
	}
	dev := h.Device()
	dev.Write(a, buf)
	flushNode(h, ed, a, size, vol)
	return a
}

func readCollision(h *alloc.Heap, ed *alloc.Edit, a pmem.Addr) []mapEntry {
	hdr := h.ReadCached(a, 8, ed)
	n := int(binary.LittleEndian.Uint32(hdr))
	entries := make([]mapEntry, n)
	if n == 0 {
		return entries
	}
	// Whole-node read under the block-start key; see readMapNode.
	body := h.ReadCached(a, 8+n*16, ed)[8:]
	for i := 0; i < n; i++ {
		entries[i] = mapEntry{
			pmem.Addr(binary.LittleEndian.Uint64(body[i*16:])),
			pmem.Addr(binary.LittleEndian.Uint64(body[i*16+8:])),
		}
	}
	return entries
}

// retainEntries retains every key and non-nil value in entries except the
// entry at skip (-1 to retain all).
func retainEntries(h *alloc.Heap, entries []mapEntry, skip int) {
	for i, e := range entries {
		if i == skip {
			continue
		}
		h.Retain(e.key)
		if e.val != pmem.Nil {
			h.Retain(e.val)
		}
	}
}

func retainChildren(h *alloc.Heap, children []pmem.Addr, skip int) {
	for i, c := range children {
		if i != skip {
			h.Retain(c)
		}
	}
}

// Get returns the value stored under key. The descent reads only the
// node bitmaps and the one relevant slot per level — not the whole node —
// matching how a real CHAMP lookup touches memory.
func (m Map) Get(key []byte) ([]byte, bool) {
	node := m.root()
	if node == pmem.Nil {
		return nil, false
	}
	dev := m.h.Device()
	hash := hash64(key)
	shift := uint(0)
	for {
		if m.h.Tag(node) == TagMapCollision {
			for _, e := range readCollision(m.h, m.ed, node) {
				if blobEqual(m.h, e.key, key) {
					if e.val == pmem.Nil {
						return nil, true
					}
					return blobBytes(m.h, e.val), true
				}
			}
			return nil, false
		}
		dataMap := dev.ReadU32(node)
		nodeMap := dev.ReadU32(node + 4)
		bit := uint32(1) << ((hash >> shift) & 31)
		switch {
		case dataMap&bit != 0:
			di := bits.OnesCount32(dataMap & (bit - 1))
			off := node + 8 + pmem.Addr(di*16)
			keyBlob := pmem.Addr(dev.ReadU64(off))
			if !blobEqual(m.h, keyBlob, key) {
				return nil, false
			}
			valBlob := pmem.Addr(dev.ReadU64(off + 8))
			if valBlob == pmem.Nil {
				return nil, true
			}
			return blobBytes(m.h, valBlob), true
		case nodeMap&bit != 0:
			d := bits.OnesCount32(dataMap)
			ni := bits.OnesCount32(nodeMap & (bit - 1))
			node = pmem.Addr(dev.ReadU64(node + 8 + pmem.Addr(d*16+ni*8)))
			shift += vecBits
		default:
			return nil, false
		}
	}
}

// Contains reports whether key is present.
func (m Map) Contains(key []byte) bool {
	_, ok := m.Get(key)
	return ok
}

// Set returns a new version with key bound to val, and whether an existing
// binding was replaced. Pass a nil val for set semantics (no value blob).
func (m Map) Set(key, val []byte) (Map, bool) {
	keyBlob := newBlob(m.h, m.ed, key)
	valBlob := pmem.Nil
	if val != nil {
		valBlob = newBlob(m.h, m.ed, val)
	}
	// The record cell is created before the insert so it holds references
	// on the blobs even when the trie reuses an existing key blob and the
	// fresh one is released.
	rec := pmem.Nil
	if m.sel {
		_, oldRec, _ := readSelExt(m.h, m.addr, mapHdrSize)
		rec = newRecord(m.h, m.ed, oldRec, RecMapSet, uint64(keyBlob), uint64(valBlob))
	}
	root := m.root()
	var newRoot pmem.Addr
	var replaced bool
	if root == pmem.Nil {
		hash := hash64(key)
		newRoot = buildMapNode(m.h, m.ed, m.sel, uint32(1)<<(hash&31), 0, []mapEntry{{keyBlob, valBlob}}, nil)
	} else {
		newRoot, replaced = m.insertRec(root, 0, hash64(key), key, keyBlob, valBlob)
		if replaced {
			m.h.Release(keyBlob) // existing key blob was reused instead
		}
	}
	count := m.Len()
	if !replaced {
		count++
	}
	return m.setHdr(count, newRoot, root, rec), replaced
}

// insertRec returns a new node with the binding applied. keyBlob/valBlob
// references transfer into the new trie unless replaced is true, in which
// case the existing key blob was retained instead and the caller must
// release keyBlob.
func (m Map) insertRec(node pmem.Addr, shift uint, hash uint64, key []byte, keyBlob, valBlob pmem.Addr) (pmem.Addr, bool) {
	h := m.h
	if h.Tag(node) == TagMapCollision {
		entries := readCollision(h, m.ed, node)
		for i, e := range entries {
			if blobEqual(h, e.key, key) {
				if m.ed.Owns(node) {
					off := node + 8 + pmem.Addr(i*16) + 8
					h.Device().WriteU64(off, uint64(valBlob))
					recordEdit(m.ed, off, 8, m.sel)
					h.Release(e.val)
					return node, true
				}
				out := make([]mapEntry, len(entries))
				copy(out, entries)
				out[i] = mapEntry{e.key, valBlob}
				retainEntries(h, entries, i)
				h.Retain(e.key) // key survives into the new bucket
				return buildCollision(h, m.ed, m.sel, out), true
			}
		}
		out := append(append([]mapEntry{}, entries...), mapEntry{keyBlob, valBlob})
		retainEntries(h, entries, -1)
		return buildCollision(h, m.ed, m.sel, out), false
	}

	dataMap, nodeMap, entries, children := readMapNode(h, m.ed, node)
	bit := uint32(1) << ((hash >> shift) & 31)
	di := bits.OnesCount32(dataMap & (bit - 1))
	ni := bits.OnesCount32(nodeMap & (bit - 1))

	switch {
	case dataMap&bit != 0:
		e := entries[di]
		if blobEqual(h, e.key, key) {
			if m.ed.Owns(node) {
				// Same shape: a single in-place value-slot write.
				off := node + 8 + pmem.Addr(di*16) + 8
				h.Device().WriteU64(off, uint64(valBlob))
				recordEdit(m.ed, off, 8, m.sel)
				h.Release(e.val)
				return node, true
			}
			// Replace the value (new node, same shape).
			out := make([]mapEntry, len(entries))
			copy(out, entries)
			out[di] = mapEntry{e.key, valBlob}
			retainEntries(h, entries, di)
			h.Retain(e.key)
			retainChildren(h, children, -1)
			return buildMapNode(h, m.ed, m.sel, dataMap, nodeMap, out, children), true
		}
		// Hash conflict at this level: push both entries one level down.
		// The node's shape changes, so an owned node is rebuilt too (its
		// replacement transfers in via the parent's in-place slot write).
		exHash := hash64(blobBytes(h, e.key))
		h.Retain(e.key)
		if e.val != pmem.Nil {
			h.Retain(e.val)
		}
		sub := m.mergeTwo(shift+vecBits, e, exHash, mapEntry{keyBlob, valBlob}, hash)
		outE := make([]mapEntry, 0, len(entries)-1)
		outE = append(outE, entries[:di]...)
		outE = append(outE, entries[di+1:]...)
		outC := make([]pmem.Addr, 0, len(children)+1)
		outC = append(outC, children[:ni]...)
		outC = append(outC, sub)
		outC = append(outC, children[ni:]...)
		retainEntries(h, entries, di)
		retainChildren(h, children, -1)
		return buildMapNode(h, m.ed, m.sel, dataMap&^bit, nodeMap|bit, outE, outC), false

	case nodeMap&bit != 0:
		newChild, replaced := m.insertRec(children[ni], shift+vecBits, hash, key, keyBlob, valBlob)
		if newChild == children[ni] {
			return node, replaced
		}
		if m.ed.Owns(node) {
			off := node + 8 + pmem.Addr(len(entries)*16+ni*8)
			h.Device().WriteU64(off, uint64(newChild))
			recordEdit(m.ed, off, 8, m.sel)
			h.Release(children[ni])
			return node, replaced
		}
		outC := make([]pmem.Addr, len(children))
		copy(outC, children)
		outC[ni] = newChild
		retainEntries(h, entries, -1)
		retainChildren(h, children, ni)
		return buildMapNode(h, m.ed, m.sel, dataMap, nodeMap, entries, outC), replaced

	default:
		outE := make([]mapEntry, 0, len(entries)+1)
		outE = append(outE, entries[:di]...)
		outE = append(outE, mapEntry{keyBlob, valBlob})
		outE = append(outE, entries[di:]...)
		retainEntries(h, entries, -1)
		retainChildren(h, children, -1)
		return buildMapNode(h, m.ed, m.sel, dataMap|bit, nodeMap, outE, children), false
	}
}

// mergeTwo builds the smallest subtree separating two distinct keys whose
// hashes collide at the parent level. Both entries' references transfer
// into the result (the caller retains the pre-existing entry beforehand).
func (m Map) mergeTwo(shift uint, e1 mapEntry, h1 uint64, e2 mapEntry, h2 uint64) pmem.Addr {
	h := m.h
	if shift >= collisionShift {
		return buildCollision(h, m.ed, m.sel, []mapEntry{e1, e2})
	}
	i1 := uint32((h1 >> shift) & 31)
	i2 := uint32((h2 >> shift) & 31)
	if i1 == i2 {
		sub := m.mergeTwo(shift+vecBits, e1, h1, e2, h2)
		return buildMapNode(h, m.ed, m.sel, 0, uint32(1)<<i1, nil, []pmem.Addr{sub})
	}
	if i1 < i2 {
		return buildMapNode(h, m.ed, m.sel, uint32(1)<<i1|uint32(1)<<i2, 0, []mapEntry{e1, e2}, nil)
	}
	return buildMapNode(h, m.ed, m.sel, uint32(1)<<i1|uint32(1)<<i2, 0, []mapEntry{e2, e1}, nil)
}

// Delete returns a new version without key, and whether the key was
// present. Deleting an absent key returns the receiver unchanged with no
// new version allocated.
func (m Map) Delete(key []byte) (Map, bool) {
	root := m.root()
	if root == pmem.Nil {
		return m, false
	}
	newRoot, removed := m.deleteRec(root, 0, hash64(key), key)
	if !removed {
		return m, false
	}
	rec := pmem.Nil
	if m.sel {
		// The record operand is a fresh key blob owned by the record alone:
		// newRecord retains it, so the temporary reference is dropped here.
		kb := newBlob(m.h, m.ed, key)
		_, oldRec, _ := readSelExt(m.h, m.addr, mapHdrSize)
		rec = newRecord(m.h, m.ed, oldRec, RecMapDelete, uint64(kb), 0)
		m.h.Release(kb)
	}
	return m.setHdr(m.Len()-1, newRoot, root, rec), true
}

// deleteRec returns the replacement node (Nil if the subtree became empty)
// and whether the key was found. For simplicity nodes are not re-inlined
// into their parents on deletion (lookup correctness is unaffected; the
// trie is merely non-canonical afterwards).
func (m Map) deleteRec(node pmem.Addr, shift uint, hash uint64, key []byte) (pmem.Addr, bool) {
	h := m.h
	if h.Tag(node) == TagMapCollision {
		entries := readCollision(h, m.ed, node)
		for i, e := range entries {
			if blobEqual(h, e.key, key) {
				if len(entries) == 1 {
					return pmem.Nil, true
				}
				out := make([]mapEntry, 0, len(entries)-1)
				out = append(out, entries[:i]...)
				out = append(out, entries[i+1:]...)
				retainEntries(h, entries, i)
				return buildCollision(h, m.ed, m.sel, out), true
			}
		}
		return pmem.Nil, false
	}

	dataMap, nodeMap, entries, children := readMapNode(h, m.ed, node)
	bit := uint32(1) << ((hash >> shift) & 31)
	di := bits.OnesCount32(dataMap & (bit - 1))
	ni := bits.OnesCount32(nodeMap & (bit - 1))

	switch {
	case dataMap&bit != 0:
		if !blobEqual(h, entries[di].key, key) {
			return pmem.Nil, false
		}
		if len(entries) == 1 && len(children) == 0 {
			return pmem.Nil, true
		}
		outE := make([]mapEntry, 0, len(entries)-1)
		outE = append(outE, entries[:di]...)
		outE = append(outE, entries[di+1:]...)
		retainEntries(h, entries, di)
		retainChildren(h, children, -1)
		return buildMapNode(h, m.ed, m.sel, dataMap&^bit, nodeMap, outE, children), true

	case nodeMap&bit != 0:
		newChild, removed := m.deleteRec(children[ni], shift+vecBits, hash, key)
		if !removed {
			return pmem.Nil, false
		}
		if newChild == pmem.Nil {
			if len(entries) == 0 && len(children) == 1 {
				return pmem.Nil, true
			}
			outC := make([]pmem.Addr, 0, len(children)-1)
			outC = append(outC, children[:ni]...)
			outC = append(outC, children[ni+1:]...)
			retainEntries(h, entries, -1)
			retainChildren(h, children, ni)
			return buildMapNode(h, m.ed, m.sel, dataMap, nodeMap&^bit, entries, outC), true
		}
		if newChild == children[ni] {
			return node, true
		}
		if m.ed.Owns(node) {
			off := node + 8 + pmem.Addr(len(entries)*16+ni*8)
			h.Device().WriteU64(off, uint64(newChild))
			recordEdit(m.ed, off, 8, m.sel)
			h.Release(children[ni])
			return node, true
		}
		outC := make([]pmem.Addr, len(children))
		copy(outC, children)
		outC[ni] = newChild
		retainEntries(h, entries, -1)
		retainChildren(h, children, ni)
		return buildMapNode(h, m.ed, m.sel, dataMap, nodeMap, entries, outC), true

	default:
		return pmem.Nil, false
	}
}

// Range calls f for every entry until f returns false. Iteration order is
// trie order (effectively hash order). Values are nil for set members.
func (m Map) Range(f func(key, val []byte) bool) {
	root := m.root()
	if root == pmem.Nil {
		return
	}
	m.rangeRec(root, f)
}

func (m Map) rangeRec(node pmem.Addr, f func(key, val []byte) bool) bool {
	h := m.h
	if h.Tag(node) == TagMapCollision {
		for _, e := range readCollision(h, m.ed, node) {
			if !emitEntry(h, e, f) {
				return false
			}
		}
		return true
	}
	_, _, entries, children := readMapNode(h, m.ed, node)
	for _, e := range entries {
		if !emitEntry(h, e, f) {
			return false
		}
	}
	for _, c := range children {
		if !m.rangeRec(c, f) {
			return false
		}
	}
	return true
}

func emitEntry(h *alloc.Heap, e mapEntry, f func(key, val []byte) bool) bool {
	var val []byte
	if e.val != pmem.Nil {
		val = blobBytes(h, e.val)
	}
	return f(blobBytes(h, e.key), val)
}

func walkMapHdr(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if root := pmem.Addr(h.Device().ReadU64(a + 8)); root != pmem.Nil {
		visit(root)
	}
}

func walkMapNode(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	dataMap, _, entries, children := readMapNode(h, nil, a)
	_ = dataMap
	for _, e := range entries {
		visit(e.key)
		if e.val != pmem.Nil {
			visit(e.val)
		}
	}
	for _, c := range children {
		visit(c)
	}
}

func walkMapCollision(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	for _, e := range readCollision(h, nil, a) {
		visit(e.key)
		if e.val != pmem.Nil {
			visit(e.val)
		}
	}
}

// Set is a purely functional hash set of byte-string keys, a Map whose
// value slots are Nil (§4.2 lists set among the CHAMP-backed structures).
type Set struct{ m Map }

// NewSet allocates an empty durable set.
func NewSet(h *alloc.Heap) Set { return Set{m: NewMap(h)} }

// NewSetSelective allocates an empty selectively persisted set.
func NewSetSelective(h *alloc.Heap) Set { return Set{m: NewMapSelective(h)} }

// SetDSAt adopts an existing set header, e.g. after recovery.
func SetDSAt(h *alloc.Heap, addr pmem.Addr) Set { return Set{m: MapAt(h, addr)} }

// WithEdit binds the version to a per-FASE edit context (DESIGN.md §8).
func (s Set) WithEdit(ed *alloc.Edit) Set { return Set{m: s.m.WithEdit(ed)} }

// Addr returns the header address of this version.
func (s Set) Addr() pmem.Addr { return s.m.Addr() }

// Heap returns the owning heap.
func (s Set) Heap() *alloc.Heap { return s.m.Heap() }

// Len returns the number of members.
func (s Set) Len() uint64 { return s.m.Len() }

// Insert returns a new version containing key and whether key was already
// a member.
func (s Set) Insert(key []byte) (Set, bool) {
	m, existed := s.m.Set(key, nil)
	return Set{m: m}, existed
}

// Contains reports membership.
func (s Set) Contains(key []byte) bool { return s.m.Contains(key) }

// Delete returns a new version without key and whether it was a member.
func (s Set) Delete(key []byte) (Set, bool) {
	m, removed := s.m.Delete(key)
	return Set{m: m}, removed
}

// Range calls f for every member until f returns false.
func (s Set) Range(f func(key []byte) bool) {
	s.m.Range(func(k, _ []byte) bool { return f(k) })
}
