package funcds

import (
	"testing"
	"testing/quick"
)

func TestVectorPushGetAcrossBoundaries(t *testing.T) {
	h := newTestHeap(t)
	v := NewVector(h)
	// 2100 elements crosses the 32 (leaf), 1024 (depth-2), boundaries.
	const n = 2100
	for i := uint64(0); i < n; i++ {
		v = v.Push(i * 3)
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if got := v.Get(i); got != i*3 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*3)
		}
	}
}

func TestVectorUpdate(t *testing.T) {
	h := newTestHeap(t)
	v := NewVector(h)
	for i := uint64(0); i < 1500; i++ {
		v = v.Push(i)
	}
	v2 := v.Update(700, 9999)
	if got := v2.Get(700); got != 9999 {
		t.Fatalf("updated Get(700) = %d, want 9999", got)
	}
	if got := v.Get(700); got != 700 {
		t.Fatalf("original version mutated: Get(700) = %d", got)
	}
	for _, i := range []uint64{0, 699, 701, 1499} {
		if v2.Get(i) != i {
			t.Fatalf("unrelated index %d changed", i)
		}
	}
}

func TestVectorUpdateOutOfRangePanics(t *testing.T) {
	h := newTestHeap(t)
	v := NewVector(h).Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range update should panic")
		}
	}()
	v.Update(1, 0)
}

func TestVectorGetOutOfRangePanics(t *testing.T) {
	h := newTestHeap(t)
	v := NewVector(h)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range get should panic")
		}
	}()
	v.Get(0)
}

func TestVectorStructuralSharingOnUpdate(t *testing.T) {
	h := newTestHeap(t)
	v := NewVector(h)
	for i := uint64(0); i < 50_000; i++ {
		old := v.Addr()
		v = v.Push(i)
		h.Release(old)
		if i%64 == 0 {
			h.Fence()
		}
	}
	h.Fence()
	before := h.Stats().CumBytes
	v2 := v.Update(43_210, 1)
	grew := h.Stats().CumBytes - before
	_ = v2
	// Path copy: ~4 nodes of 264B + header, far below the 100k-element
	// vector (~1 MB). This is the <0.01% shadow overhead claim of §6.5.
	if grew > 4096 {
		t.Fatalf("update allocated %d bytes, want a small path copy", grew)
	}
	live := h.Stats().LiveBytes
	if float64(grew)/float64(live) > 0.005 {
		t.Fatalf("shadow overhead %.4f%% too large", 100*float64(grew)/float64(live))
	}
}

func TestVectorSwapViaTwoUpdates(t *testing.T) {
	// The vec-swap workload composes two updates on successive shadows
	// (Fig. 7b); verify the doubly-updated version is correct.
	h := newTestHeap(t)
	v := NewVector(h)
	for i := uint64(0); i < 5000; i++ {
		v = v.Push(i)
	}
	i1, i2 := uint64(17), uint64(4999)
	a, b := v.Get(i1), v.Get(i2)
	shadow := v.Update(i1, b)
	shadow2 := shadow.Update(i2, a)
	if shadow2.Get(i1) != b || shadow2.Get(i2) != a {
		t.Fatal("swap incorrect")
	}
	if v.Get(i1) != a || v.Get(i2) != b {
		t.Fatal("original mutated by swap")
	}
}

func TestVectorNoFencesAndAllFlushed(t *testing.T) {
	h := newTestHeap(t)
	dev := h.Device()
	before := dev.Stats()
	v := NewVector(h)
	for i := uint64(0); i < 200; i++ {
		v = v.Push(i)
	}
	v = v.Update(100, 1)
	delta := dev.Stats().Sub(before)
	if delta.Fences != 0 {
		t.Fatalf("pure vector ops issued %d fences", delta.Fences)
	}
	if dev.DirtyLines() != 0 {
		t.Fatalf("%d dirty lines left unflushed", dev.DirtyLines())
	}
}

func TestVectorReclamationAfterVersionChain(t *testing.T) {
	h := newTestHeap(t)
	v := NewVector(h)
	for i := uint64(0); i < 300; i++ {
		old := v.Addr()
		v = v.Push(i)
		h.Release(old)
		h.Fence()
	}
	liveWithOne := h.Stats().LiveBytes
	h.Release(v.Addr())
	h.Fence()
	if got := h.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d after releasing final version, want 0 (had %d live)", got, liveWithOne)
	}
}

func TestVectorQuickAgainstModel(t *testing.T) {
	h := newTestHeap(t)
	f := func(pushes []uint16, updates []uint16) bool {
		v := NewVector(h)
		model := make([]uint64, 0, len(pushes))
		for _, p := range pushes {
			v = v.Push(uint64(p))
			model = append(model, uint64(p))
		}
		for _, u := range updates {
			if len(model) == 0 {
				break
			}
			idx := uint64(u) % uint64(len(model))
			v = v.Update(idx, uint64(u)+1_000_000)
			model[idx] = uint64(u) + 1_000_000
		}
		if v.Len() != uint64(len(model)) {
			return false
		}
		for i, want := range model {
			if v.Get(uint64(i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
