package funcds

import (
	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Stack is a purely functional LIFO stack of 8-byte elements, implemented
// as a cons list (Fig. 1 of the paper). Push and Pop are pure: they return
// a new version sharing all surviving nodes with the original.
//
// Layout:
//
//	header (TagStackHdr): [head u64][len u64]
//	node   (TagListNode): [next u64][value u64]
type Stack struct {
	h    *alloc.Heap
	addr pmem.Addr
	ed   *alloc.Edit
	sel  bool // selective persistence: volatile cons cells, record chain (record.go)
}

const (
	stackHdrSize = 16
	listNodeSize = 16
)

// NewStack allocates an empty durable stack (flushed, not fenced).
func NewStack(h *alloc.Heap) Stack {
	a := h.AllocNode(stackHdrSize, TagStackHdr)
	dev := h.Device()
	dev.WriteU64(a, 0)
	dev.WriteU64(a+8, 0)
	h.SealNode(a, stackHdrSize)
	return Stack{h: h, addr: a}
}

// NewStackSelective allocates an empty selectively persisted stack: cons
// cells stay volatile-clean, every update appends a durable record cell,
// and the checkpoint clone starts as an empty normal stack.
func NewStackSelective(h *alloc.Heap) Stack {
	ckpt := NewStack(h).Addr()
	a := h.AllocNode(stackHdrSize+selExtSize, TagStackHdrSel)
	h.Device().Zero(a, stackHdrSize)
	writeSelExt(h, a, stackHdrSize, ckpt, pmem.Nil, 0)
	h.SealNode(a, stackHdrSize+selExtSize)
	return Stack{h: h, addr: a, sel: true}
}

// StackAt adopts an existing stack header, e.g. after recovery. The
// selective variant is recognized by its tag.
func StackAt(h *alloc.Heap, addr pmem.Addr) Stack {
	return Stack{h: h, addr: addr, sel: h.Tag(addr) == TagStackHdrSel}
}

// WithEdit binds the version to a per-FASE edit context (DESIGN.md §8).
func (s Stack) WithEdit(ed *alloc.Edit) Stack {
	return Stack{h: s.h, addr: s.addr, ed: ed, sel: s.sel}
}

// Addr returns the header address of this version.
func (s Stack) Addr() pmem.Addr { return s.addr }

// Heap returns the owning heap.
func (s Stack) Heap() *alloc.Heap { return s.h }

// Len returns the number of elements.
func (s Stack) Len() uint64 { return s.h.Device().ReadU64(s.addr + 8) }

func (s Stack) head() pmem.Addr { return pmem.Addr(s.h.Device().ReadU64(s.addr)) }

// newListNode allocates and flushes a cons cell (volatile under selective
// persistence). The next pointer must already be owned by the caller
// (this function retains it).
func newListNode(h *alloc.Heap, ed *alloc.Edit, vol bool, next pmem.Addr, val uint64) pmem.Addr {
	a := nodeAlloc(h, ed, listNodeSize, TagListNode, vol)
	dev := h.Device()
	dev.WriteU64(a, uint64(next))
	dev.WriteU64(a+8, val)
	flushNode(h, ed, a, listNodeSize, vol)
	h.Retain(next)
	return a
}

func newStackHdr(h *alloc.Heap, ed *alloc.Edit, head pmem.Addr, n uint64) pmem.Addr {
	a := nodeAlloc(h, ed, stackHdrSize, TagStackHdr, false)
	dev := h.Device()
	dev.WriteU64(a, uint64(head))
	dev.WriteU64(a+8, n)
	flushNode(h, ed, a, stackHdrSize, false)
	return a
}

// setHdr produces a stack header pointing at head (reference transfers
// in): an in-place mutation when the receiver's header is edit-owned —
// releasing the header's reference to the displaced old head — or a
// fresh header otherwise. Selective stacks additionally install rec at
// the head of the record chain.
func (s Stack) setHdr(head, oldHead pmem.Addr, n uint64, rec pmem.Addr) Stack {
	if s.ed.Owns(s.addr) {
		dev := s.h.Device()
		dev.WriteU64(s.addr, uint64(head))
		dev.WriteU64(s.addr+8, n)
		size := stackHdrSize
		if s.sel {
			ckpt, oldRec, recCount := readSelExt(s.h, s.addr, stackHdrSize)
			writeSelExt(s.h, s.addr, stackHdrSize, ckpt, rec, recCount+1)
			size += selExtSize
			if oldRec != pmem.Nil {
				s.h.Release(oldRec)
			}
		}
		recordEdit(s.ed, s.addr, size, false)
		s.h.Release(oldHead)
		return s
	}
	if s.sel {
		ckpt, _, recCount := readSelExt(s.h, s.addr, stackHdrSize)
		hdr := nodeAlloc(s.h, s.ed, stackHdrSize+selExtSize, TagStackHdrSel, false)
		dev := s.h.Device()
		dev.WriteU64(hdr, uint64(head))
		dev.WriteU64(hdr+8, n)
		writeSelExt(s.h, hdr, stackHdrSize, ckpt, rec, recCount+1)
		flushNode(s.h, s.ed, hdr, stackHdrSize+selExtSize, false)
		s.h.Retain(ckpt)
		return Stack{h: s.h, addr: hdr, ed: s.ed, sel: true}
	}
	hdr := newStackHdr(s.h, s.ed, head, n)
	return Stack{h: s.h, addr: hdr, ed: s.ed}
}

// Push returns a new version with val on top. The node and header writes
// are flushed with no ordering point.
func (s Stack) Push(val uint64) Stack {
	rec := pmem.Nil
	if s.sel {
		_, oldRec, _ := readSelExt(s.h, s.addr, stackHdrSize)
		rec = newRecord(s.h, s.ed, oldRec, RecStackPush, val, 0)
	}
	head := s.head()
	node := newListNode(s.h, s.ed, s.sel, head, val)
	// The header owns the node: transfer the constructor's reference. In
	// the in-place case the header's reference to the old head moved into
	// the node (which retained it), so the header's own reference drops.
	return s.setHdr(node, head, s.Len()+1, rec)
}

// Pop returns a new version without the top element, the element, and
// whether the stack was non-empty. Popping an empty stack returns the
// receiver unchanged.
func (s Stack) Pop() (Stack, uint64, bool) {
	head := s.head()
	if head == pmem.Nil {
		return s, 0, false
	}
	rec := pmem.Nil
	if s.sel {
		_, oldRec, _ := readSelExt(s.h, s.addr, stackHdrSize)
		rec = newRecord(s.h, s.ed, oldRec, RecStackPop, 0, 0)
	}
	dev := s.h.Device()
	next := pmem.Addr(dev.ReadU64(head))
	val := dev.ReadU64(head + 8)
	s.h.Retain(next)
	return s.setHdr(next, head, s.Len()-1, rec), val, true
}

// Peek returns the top element without modifying the stack.
func (s Stack) Peek() (uint64, bool) {
	head := s.head()
	if head == pmem.Nil {
		return 0, false
	}
	return s.h.Device().ReadU64(head + 8), true
}

// Elements returns the stack contents from top to bottom (for tests).
func (s Stack) Elements() []uint64 {
	var out []uint64
	dev := s.h.Device()
	for n := s.head(); n != pmem.Nil; n = pmem.Addr(dev.ReadU64(n)) {
		out = append(out, dev.ReadU64(n+8))
	}
	return out
}

func walkStackHdr(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if head := pmem.Addr(h.Device().ReadU64(a)); head != pmem.Nil {
		visit(head)
	}
}

func walkListNode(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if next := pmem.Addr(h.Device().ReadU64(a)); next != pmem.Nil {
		visit(next)
	}
}
