package funcds

import (
	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Stack is a purely functional LIFO stack of 8-byte elements, implemented
// as a cons list (Fig. 1 of the paper). Push and Pop are pure: they return
// a new version sharing all surviving nodes with the original.
//
// Layout:
//
//	header (TagStackHdr): [head u64][len u64]
//	node   (TagListNode): [next u64][value u64]
type Stack struct {
	h    *alloc.Heap
	addr pmem.Addr
}

const (
	stackHdrSize = 16
	listNodeSize = 16
)

// NewStack allocates an empty durable stack (flushed, not fenced).
func NewStack(h *alloc.Heap) Stack {
	a := h.Alloc(stackHdrSize, TagStackHdr)
	dev := h.Device()
	dev.WriteU64(a, 0)
	dev.WriteU64(a+8, 0)
	dev.FlushRange(a-8, stackHdrSize+8)
	return Stack{h: h, addr: a}
}

// StackAt adopts an existing stack header, e.g. after recovery.
func StackAt(h *alloc.Heap, addr pmem.Addr) Stack { return Stack{h: h, addr: addr} }

// Addr returns the header address of this version.
func (s Stack) Addr() pmem.Addr { return s.addr }

// Heap returns the owning heap.
func (s Stack) Heap() *alloc.Heap { return s.h }

// Len returns the number of elements.
func (s Stack) Len() uint64 { return s.h.Device().ReadU64(s.addr + 8) }

func (s Stack) head() pmem.Addr { return pmem.Addr(s.h.Device().ReadU64(s.addr)) }

// newListNode allocates and flushes a cons cell. The next pointer must
// already be owned by the caller (this function retains it).
func newListNode(h *alloc.Heap, next pmem.Addr, val uint64) pmem.Addr {
	a := h.Alloc(listNodeSize, TagListNode)
	dev := h.Device()
	dev.WriteU64(a, uint64(next))
	dev.WriteU64(a+8, val)
	dev.FlushRange(a-8, listNodeSize+8)
	h.Retain(next)
	return a
}

func newStackHdr(h *alloc.Heap, head pmem.Addr, n uint64) pmem.Addr {
	a := h.Alloc(stackHdrSize, TagStackHdr)
	dev := h.Device()
	dev.WriteU64(a, uint64(head))
	dev.WriteU64(a+8, n)
	dev.FlushRange(a-8, stackHdrSize+8)
	return a
}

// Push returns a new version with val on top. The node and header writes
// are flushed with no ordering point.
func (s Stack) Push(val uint64) Stack {
	node := newListNode(s.h, s.head(), val)
	hdr := newStackHdr(s.h, node, s.Len()+1)
	// The header owns the node: transfer the constructor's reference.
	return Stack{h: s.h, addr: hdr}
}

// Pop returns a new version without the top element, the element, and
// whether the stack was non-empty. Popping an empty stack returns the
// receiver unchanged.
func (s Stack) Pop() (Stack, uint64, bool) {
	head := s.head()
	if head == pmem.Nil {
		return s, 0, false
	}
	dev := s.h.Device()
	next := pmem.Addr(dev.ReadU64(head))
	val := dev.ReadU64(head + 8)
	s.h.Retain(next)
	hdr := newStackHdr(s.h, next, s.Len()-1)
	return Stack{h: s.h, addr: hdr}, val, true
}

// Peek returns the top element without modifying the stack.
func (s Stack) Peek() (uint64, bool) {
	head := s.head()
	if head == pmem.Nil {
		return 0, false
	}
	return s.h.Device().ReadU64(head + 8), true
}

// Elements returns the stack contents from top to bottom (for tests).
func (s Stack) Elements() []uint64 {
	var out []uint64
	dev := s.h.Device()
	for n := s.head(); n != pmem.Nil; n = pmem.Addr(dev.ReadU64(n)) {
		out = append(out, dev.ReadU64(n+8))
	}
	return out
}

func walkStackHdr(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if head := pmem.Addr(h.Device().ReadU64(a)); head != pmem.Nil {
		visit(head)
	}
}

func walkListNode(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if next := pmem.Addr(h.Device().ReadU64(a)); next != pmem.Nil {
		visit(next)
	}
}
