package funcds

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Selective persistence (DESIGN.md §10, after "Don't Persist All"):
// a selective structure keeps its navigation nodes volatile-clean — block
// headers durable, payloads unflushed — and persists only a minimal core:
//
//   - the structure header itself (always fully flushed), extended with
//     [ckptHdr u64][recHead u64][recCount u64] after the base fields;
//   - leaf payloads (key/value blobs), which record cells reference;
//   - a cons-list of fixed-size operation records, newest first, that
//     logically replays every update since the last checkpoint.
//
// ckptHdr points at a checkpoint clone: a normal-tagged header snapshot
// whose entire subtree is durable. Recovered state is rebuilt by replaying
// the record chain (oldest first) onto the checkpoint — it never depends
// on the contents of an unflushed navigation node. Every checkpointEvery
// records, the commit path flushes the live volatile crown, clears the
// volatile bits inside the commit bracket (PrepareCheckpoint + the store's
// clear step), and resets the chain.

// selExtSize is the selective header extension appended after a
// structure's base fields: [ckptHdr u64][recHead u64][recCount u64].
const selExtSize = 24

// Record cell layout (TagRecord, durable): [prev u64][kind u64][a u64][b u64].
const (
	recordSize = 32
	recOffPrev = 0
	recOffKind = 8
	recOffA    = 16
	recOffB    = 24
)

// Record kinds. Operands a/b are blob addresses for the map kinds (the
// record cell holds a reference on each) and raw values otherwise.
const (
	RecMapSet    uint64 = 1 + iota // a=key blob, b=value blob or Nil (set member)
	RecMapDelete                   // a=key blob
	RecVecPush                     // a=value
	RecVecUpdate                   // a=index, b=value
	RecStackPush                   // a=value
	RecStackPop                    // (no operands)
	RecQueuePush                   // a=value
	RecQueuePop                    // (no operands)

	recKindMax = RecQueuePop
)

// checkpointEvery is the record-chain length that triggers a checkpoint at
// the next commit. The crown flushed by a checkpoint is bounded by the
// live navigation-node count, so the amortized cost per update is roughly
// treeLines/checkpointEvery: the interval must be large relative to the
// structure's interior for selective persistence to keep its flush
// advantage, and small enough to bound recovery replay (the chain is
// replayed oldest-first on open).
var checkpointEvery atomic.Uint64

func init() { checkpointEvery.Store(32768) }

// CheckpointEvery returns the current checkpoint interval.
func CheckpointEvery() uint64 { return checkpointEvery.Load() }

// SetCheckpointEvery sets the checkpoint interval (records between crown
// flushes) and returns the previous value. Tests use small intervals to
// exercise the checkpoint path; 0 checkpoints on every commit.
func SetCheckpointEvery(n uint64) uint64 { return checkpointEvery.Swap(n) }

// EncodeRecord renders a record cell's payload bytes.
func EncodeRecord(prev pmem.Addr, kind, a, b uint64) []byte {
	buf := make([]byte, recordSize)
	binary.LittleEndian.PutUint64(buf[recOffPrev:], uint64(prev))
	binary.LittleEndian.PutUint64(buf[recOffKind:], kind)
	binary.LittleEndian.PutUint64(buf[recOffA:], a)
	binary.LittleEndian.PutUint64(buf[recOffB:], b)
	return buf
}

// DecodeRecord parses a record cell's payload, validating the kind and the
// kind-specific operand shape. It is the recovery-replay decoder and a
// fuzz target (FuzzRecoveryRecord).
func DecodeRecord(buf []byte) (prev pmem.Addr, kind, a, b uint64, err error) {
	if len(buf) < recordSize {
		return 0, 0, 0, 0, fmt.Errorf("funcds: record cell truncated: %d bytes", len(buf))
	}
	prev = pmem.Addr(binary.LittleEndian.Uint64(buf[recOffPrev:]))
	kind = binary.LittleEndian.Uint64(buf[recOffKind:])
	a = binary.LittleEndian.Uint64(buf[recOffA:])
	b = binary.LittleEndian.Uint64(buf[recOffB:])
	if kind == 0 || kind > recKindMax {
		return 0, 0, 0, 0, fmt.Errorf("funcds: record kind %d out of range", kind)
	}
	switch kind {
	case RecMapSet, RecMapDelete:
		if a == uint64(pmem.Nil) {
			return 0, 0, 0, 0, fmt.Errorf("funcds: map record without key blob")
		}
	case RecStackPop, RecQueuePop:
		if a != 0 || b != 0 {
			return 0, 0, 0, 0, fmt.Errorf("funcds: pop record carries operands")
		}
	}
	return prev, kind, a, b, nil
}

// newRecord allocates, links, and flushes one durable record cell. The
// cell takes its own references: prev, and the blob operands of the map
// kinds. The caller owns the returned cell's initial reference (normally
// transferred into the header's recHead field).
func newRecord(h *alloc.Heap, ed *alloc.Edit, prev pmem.Addr, kind, a, b uint64) pmem.Addr {
	r := nodeAlloc(h, ed, recordSize, TagRecord, false)
	h.Device().Write(r, EncodeRecord(prev, kind, a, b))
	flushNode(h, ed, r, recordSize, false)
	if prev != pmem.Nil {
		h.Retain(prev)
	}
	switch kind {
	case RecMapSet:
		h.Retain(pmem.Addr(a))
		if pmem.Addr(b) != pmem.Nil {
			h.Retain(pmem.Addr(b))
		}
	case RecMapDelete:
		h.Retain(pmem.Addr(a))
	}
	return r
}

// readRecord loads a record cell, panicking on corruption (durable cells
// are validated by DecodeRecord during recovery instead).
func readRecord(h *alloc.Heap, r pmem.Addr) (prev pmem.Addr, kind, a, b uint64) {
	buf := make([]byte, recordSize)
	h.Device().Read(r, buf)
	prev, kind, a, b, err := DecodeRecord(buf)
	if err != nil {
		panic(err)
	}
	return prev, kind, a, b
}

func walkRecord(h *alloc.Heap, r pmem.Addr, visit func(pmem.Addr)) {
	dev := h.Device()
	if prev := pmem.Addr(dev.ReadU64(r + recOffPrev)); prev != pmem.Nil {
		visit(prev)
	}
	switch dev.ReadU64(r + recOffKind) {
	case RecMapSet:
		visit(pmem.Addr(dev.ReadU64(r + recOffA)))
		if b := pmem.Addr(dev.ReadU64(r + recOffB)); b != pmem.Nil {
			visit(b)
		}
	case RecMapDelete:
		visit(pmem.Addr(dev.ReadU64(r + recOffA)))
	}
}

// selBaseSize returns the base-field size preceding the selective
// extension for a selective header tag, or 0 for any other tag.
func selBaseSize(tag uint8) int {
	switch tag {
	case TagMapHdrSel:
		return mapHdrSize
	case TagVecHdrSel:
		return vecHdrSize
	case TagStackHdrSel:
		return stackHdrSize
	case TagQueueHdrSel:
		return queueHdrSize
	}
	return 0
}

// IsSelective reports whether the header at hdr is a selectively
// persisted structure.
func IsSelective(h *alloc.Heap, hdr pmem.Addr) bool {
	return hdr != pmem.Nil && selBaseSize(h.Tag(hdr)) != 0
}

// SelectiveExt returns the checkpoint clone, record chain head, and
// pending record count of the selective header at hdr (Nil, Nil, 0 when
// hdr is not a selective structure). Fault-injection harnesses use it to
// aim damage at the chain a salvage must survive.
func SelectiveExt(h *alloc.Heap, hdr pmem.Addr) (ckpt, recHead pmem.Addr, recCount uint64) {
	if hdr == pmem.Nil {
		return pmem.Nil, pmem.Nil, 0
	}
	base := selBaseSize(h.Tag(hdr))
	if base == 0 {
		return pmem.Nil, pmem.Nil, 0
	}
	return readSelExt(h, hdr, base)
}

// readSelExt reads the selective extension of the header at hdr.
func readSelExt(h *alloc.Heap, hdr pmem.Addr, base int) (ckpt, recHead pmem.Addr, recCount uint64) {
	dev := h.Device()
	a := hdr + pmem.Addr(base)
	return pmem.Addr(dev.ReadU64(a)), pmem.Addr(dev.ReadU64(a + 8)), dev.ReadU64(a + 16)
}

// writeSelExt writes the selective extension (flushing is the caller's
// concern: flushNode/recordEdit on the whole header, or an explicit
// FlushRange on the ext region).
func writeSelExt(h *alloc.Heap, hdr pmem.Addr, base int, ckpt, recHead pmem.Addr, recCount uint64) {
	dev := h.Device()
	a := hdr + pmem.Addr(base)
	dev.WriteU64(a, uint64(ckpt))
	dev.WriteU64(a+8, uint64(recHead))
	dev.WriteU64(a+16, recCount)
}

// walkSelHdr visits a selective header's children: the live pointers of
// the base layout plus the checkpoint clone and the record chain head.
func walkSelHdr(baseWalk func(*alloc.Heap, pmem.Addr, func(pmem.Addr)), base int) alloc.Walker {
	return func(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
		baseWalk(h, a, visit)
		ckpt, recHead, _ := readSelExt(h, a, base)
		if ckpt != pmem.Nil {
			visit(ckpt)
		}
		if recHead != pmem.Nil {
			visit(recHead)
		}
	}
}

// livePointers returns the base-layout child pointers of a selective
// header (the roots of the possibly-volatile navigation crown).
func livePointers(h *alloc.Heap, hdr pmem.Addr) []pmem.Addr {
	dev := h.Device()
	switch h.Tag(hdr) {
	case TagMapHdrSel:
		return []pmem.Addr{pmem.Addr(dev.ReadU64(hdr + 8))}
	case TagVecHdrSel:
		return []pmem.Addr{pmem.Addr(dev.ReadU64(hdr + 16)), pmem.Addr(dev.ReadU64(hdr + 24))}
	case TagStackHdrSel:
		return []pmem.Addr{pmem.Addr(dev.ReadU64(hdr))}
	case TagQueueHdrSel:
		return []pmem.Addr{pmem.Addr(dev.ReadU64(hdr)), pmem.Addr(dev.ReadU64(hdr + 8))}
	}
	return nil
}

// selAppendRecord installs rec at the head of the record chain of the
// selective header at hdr when the operation changed no base fields (an
// in-place deep mutation): an ext rewrite when the header is edit-owned,
// otherwise a fresh selective header copying the base fields, which
// becomes a second parent of the live pointers and the checkpoint. The
// rec reference transfers in; returns the resulting header address.
func selAppendRecord(h *alloc.Heap, ed *alloc.Edit, hdr, rec pmem.Addr) pmem.Addr {
	tag := h.Tag(hdr)
	base := selBaseSize(tag)
	ckpt, oldRec, recCount := readSelExt(h, hdr, base)
	if ed.Owns(hdr) {
		writeSelExt(h, hdr, base, ckpt, rec, recCount+1)
		recordEdit(ed, hdr+pmem.Addr(base), selExtSize, false)
		if oldRec != pmem.Nil {
			h.Release(oldRec)
		}
		return hdr
	}
	a := nodeAlloc(h, ed, base+selExtSize, tag, false)
	dev := h.Device()
	buf := make([]byte, base)
	dev.Read(hdr, buf)
	dev.Write(a, buf)
	writeSelExt(h, a, base, ckpt, rec, recCount+1)
	flushNode(h, ed, a, base+selExtSize, false)
	for _, p := range livePointers(h, a) {
		if p != pmem.Nil {
			h.Retain(p)
		}
	}
	h.Retain(ckpt)
	return a
}

// volatileCrown collects every volatile block reachable from roots
// through volatile blocks only. Descent prunes at durable children: a
// durable node never points at a volatile one (newer shadows reference
// older state, never the reverse), so the crown is exactly the volatile
// set reachable from the header.
func volatileCrown(h *alloc.Heap, roots []pmem.Addr) []pmem.Addr {
	var out []pmem.Addr
	seen := make(map[pmem.Addr]struct{})
	var rec func(a pmem.Addr)
	rec = func(a pmem.Addr) {
		if a == pmem.Nil {
			return
		}
		if _, ok := seen[a]; ok || !h.IsVolatile(a) {
			return
		}
		seen[a] = struct{}{}
		out = append(out, a)
		switch h.Tag(a) {
		case TagMapNode:
			_, _, _, children := readMapNode(h, nil, a)
			for _, c := range children {
				rec(c)
			}
		case TagVecNode:
			slots := readNode(h, nil, a)
			for _, c := range slots {
				rec(pmem.Addr(c))
			}
		case TagListNode:
			rec(pmem.Addr(h.Device().ReadU64(a)))
			// TagVecLeaf and TagMapCollision carry no volatile children
			// (their pointers, if any, are always-durable blobs).
		}
	}
	for _, r := range roots {
		rec(r)
	}
	return out
}

// NeedsCheckpoint reports whether the selective structure at hdr has
// accumulated enough records to checkpoint at the next commit.
func NeedsCheckpoint(h *alloc.Heap, hdr pmem.Addr) bool {
	base := selBaseSize(h.Tag(hdr))
	if base == 0 {
		return false
	}
	_, _, recCount := readSelExt(h, hdr, base)
	return recCount >= checkpointEvery.Load()
}

// PrepareCheckpoint runs the in-FASE half of a checkpoint on the final
// shadow header of the committing FASE (which therefore was allocated
// within it): it flushes the payload of every crown node, snapshots the
// live state into a fresh normal-tagged checkpoint clone, and resets the
// record chain. It returns the crown, whose volatile bits the commit step
// must clear — after a fence has made the payload flushes durable and
// before the publish fence (Store.commitRoot). Until those bits clear
// durably, recovery still rebuilds from the previous checkpoint + chain.
func PrepareCheckpoint(h *alloc.Heap, hdr pmem.Addr) []pmem.Addr {
	tag := h.Tag(hdr)
	base := selBaseSize(tag)
	if base == 0 {
		return nil
	}
	dev := h.Device()
	crown := volatileCrown(h, livePointers(h, hdr))
	for _, a := range crown {
		dev.FlushRange(a, h.PayloadSize(a))
	}

	// Clone the base fields into a normal-tagged durable header; the clone
	// gains a reference on each live pointer.
	var clone pmem.Addr
	switch tag {
	case TagMapHdrSel:
		clone = h.AllocNode(mapHdrSize, TagMapHdr)
	case TagVecHdrSel:
		clone = h.AllocNode(vecHdrSize, TagVecHdr)
	case TagStackHdrSel:
		clone = h.AllocNode(stackHdrSize, TagStackHdr)
	case TagQueueHdrSel:
		clone = h.AllocNode(queueHdrSize, TagQueueHdr)
	}
	buf := make([]byte, base)
	dev.Read(hdr, buf)
	dev.Write(clone, buf)
	h.SealNode(clone, base)
	for _, p := range livePointers(h, hdr) {
		if p != pmem.Nil {
			h.Retain(p)
		}
	}

	oldCkpt, oldRec, _ := readSelExt(h, hdr, base)
	writeSelExt(h, hdr, base, clone, pmem.Nil, 0)
	dev.FlushRange(hdr+pmem.Addr(base), selExtSize)
	// The ext rewrite changed sealed payload bytes: recompute the header's
	// checksum. Before the owning edit seals this is a no-op (the word is
	// still zero, and Seal will stamp the final bytes); after it, the
	// reseal keeps the published header verifiable.
	h.ResealNode(hdr)
	if oldCkpt != pmem.Nil {
		h.Release(oldCkpt)
	}
	if oldRec != pmem.Nil {
		h.Release(oldRec)
	}
	return crown
}

// RebuildSelective reconstructs the selective structure at hdr after
// recovery zeroed its volatile crown: it replays the record chain (oldest
// first) onto the checkpoint clone and returns a fresh selective header
// whose checkpoint is the replayed state. The caller publishes the new
// header (root swap + fence) and then releases the old one. replayed is
// the number of records applied; rebuilt reports whether any work was
// needed (false when the crown was fully durable and the chain empty —
// the header may be returned unchanged).
func RebuildSelective(h *alloc.Heap, hdr pmem.Addr) (newHdr pmem.Addr, replayed int, rebuilt bool, err error) {
	tag := h.Tag(hdr)
	base := selBaseSize(tag)
	if base == 0 {
		return hdr, 0, false, fmt.Errorf("funcds: rebuild of non-selective header %#x (tag %d)", uint64(hdr), tag)
	}
	ckpt, recHead, recCount := readSelExt(h, hdr, base)
	if ckpt == pmem.Nil {
		return hdr, 0, false, fmt.Errorf("funcds: selective header %#x has no checkpoint", uint64(hdr))
	}
	if recCount == 0 {
		clean := true
		for _, p := range livePointers(h, hdr) {
			if p != pmem.Nil && h.IsVolatile(p) {
				clean = false
				break
			}
		}
		if clean {
			return hdr, 0, false, nil
		}
	}

	// Collect the chain newest-first and reverse into replay order. A
	// mismatched length means a corrupt chain: the store must not open.
	chain := make([]pmem.Addr, 0, recCount)
	for r := recHead; r != pmem.Nil; {
		chain = append(chain, r)
		prev, _, _, _ := readRecord(h, r)
		r = prev
	}
	if uint64(len(chain)) != recCount {
		return hdr, 0, false, fmt.Errorf("funcds: record chain of %#x has %d cells, header says %d", uint64(hdr), len(chain), recCount)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	ed := h.BeginEdit()
	var final pmem.Addr
	switch tag {
	case TagMapHdrSel:
		m := MapAt(h, ckpt).WithEdit(ed)
		for _, r := range chain {
			_, kind, a, b := readRecord(h, r)
			switch kind {
			case RecMapSet:
				var val []byte
				if pmem.Addr(b) != pmem.Nil {
					val = blobBytes(h, pmem.Addr(b))
				}
				m, _ = m.Set(blobBytes(h, pmem.Addr(a)), val)
			case RecMapDelete:
				m, _ = m.Delete(blobBytes(h, pmem.Addr(a)))
			default:
				return hdr, 0, false, fmt.Errorf("funcds: record kind %d in map chain", kind)
			}
		}
		final = m.Addr()
	case TagVecHdrSel:
		v := VectorAt(h, ckpt).WithEdit(ed)
		for _, r := range chain {
			_, kind, a, b := readRecord(h, r)
			switch kind {
			case RecVecPush:
				v = v.Push(a)
			case RecVecUpdate:
				v = v.Update(a, b)
			default:
				return hdr, 0, false, fmt.Errorf("funcds: record kind %d in vector chain", kind)
			}
		}
		final = v.Addr()
	case TagStackHdrSel:
		s := StackAt(h, ckpt).WithEdit(ed)
		for _, r := range chain {
			_, kind, a, _ := readRecord(h, r)
			switch kind {
			case RecStackPush:
				s = s.Push(a)
			case RecStackPop:
				s, _, _ = s.Pop()
			default:
				return hdr, 0, false, fmt.Errorf("funcds: record kind %d in stack chain", kind)
			}
		}
		final = s.Addr()
	case TagQueueHdrSel:
		q := QueueAt(h, ckpt).WithEdit(ed)
		for _, r := range chain {
			_, kind, a, _ := readRecord(h, r)
			switch kind {
			case RecQueuePush:
				q = q.Push(a)
			case RecQueuePop:
				q, _, _ = q.Pop()
			default:
				return hdr, 0, false, fmt.Errorf("funcds: record kind %d in queue chain", kind)
			}
		}
		final = q.Addr()
	}
	ed.Seal()
	if final == ckpt {
		// No records and nothing replayed (volatile crown with an empty
		// chain cannot reference the checkpoint's own state, so final only
		// equals ckpt when the chain was empty): the replayed state IS the
		// checkpoint — it gains a reference as the new header's clone.
		h.Retain(final)
	}

	// Fresh selective header over the replayed state, which doubles as its
	// checkpoint (entirely durable, empty chain).
	newHdr = selHdrOver(h, final, tag, base)
	return newHdr, len(chain), true, nil
}

// selHdrOver builds a fresh sealed selective header of the given tag
// whose base fields copy the (fully durable) structure at state and whose
// checkpoint is state itself, with an empty record chain. The state
// reference transfers in; live pointers gain a reference each.
func selHdrOver(h *alloc.Heap, state pmem.Addr, tag uint8, base int) pmem.Addr {
	hdr := h.AllocNode(base+selExtSize, tag)
	dev := h.Device()
	buf := make([]byte, base)
	dev.Read(state, buf)
	dev.Write(hdr, buf)
	writeSelExt(h, hdr, base, state, pmem.Nil, 0)
	h.SealNode(hdr, base+selExtSize)
	for _, p := range livePointers(h, hdr) {
		if p != pmem.Nil {
			h.Retain(p)
		}
	}
	return hdr
}

// chainDamage walks the record chain from recHead, verifying every cell's
// block checksum, decoded shape, and (for map kinds) operand blobs. It
// returns nil when the chain verifies end to end with exactly recCount
// cells, and the damage description otherwise. All reads go through
// verification-safe paths, so a poisoned line classifies as damage
// instead of panicking.
func chainDamage(h *alloc.Heap, recHead pmem.Addr, recCount uint64) error {
	var n uint64
	for r := recHead; r != pmem.Nil; {
		if n >= recCount {
			return fmt.Errorf("funcds: record chain longer than header count %d", recCount)
		}
		if err := h.VerifyBlock(r); err != nil {
			return err
		}
		buf := make([]byte, recordSize)
		h.Device().Read(r, buf)
		prev, kind, a, b, err := DecodeRecord(buf)
		if err != nil {
			return err
		}
		switch kind {
		case RecMapSet, RecMapDelete:
			if err := h.VerifyBlock(pmem.Addr(a)); err != nil {
				return err
			}
			if kind == RecMapSet && pmem.Addr(b) != pmem.Nil {
				if err := h.VerifyBlock(pmem.Addr(b)); err != nil {
					return err
				}
			}
		}
		n++
		r = prev
	}
	if n != recCount {
		return fmt.Errorf("funcds: record chain has %d cells, header says %d", n, recCount)
	}
	return nil
}

// SalvageSelective rebuilds the selective structure at hdr tolerating a
// damaged record chain: when every record cell (and its blob operands)
// verifies, it replays the chain exactly like RebuildSelective; when the
// chain is damaged, it discards all of it and rolls the structure back to
// its last checkpoint — the committed-prefix guarantee shrinks to the
// checkpoint boundary, but nothing corrupt is ever replayed. dropped
// reports how many records the rollback discarded (per the header's
// count). The checkpoint subtree itself is not walked here; callers
// verify the returned header with VerifyRoot-style checks.
func SalvageSelective(h *alloc.Heap, hdr pmem.Addr) (newHdr pmem.Addr, replayed int, dropped uint64, err error) {
	tag := h.Tag(hdr)
	base := selBaseSize(tag)
	if base == 0 {
		return hdr, 0, 0, fmt.Errorf("funcds: salvage of non-selective header %#x (tag %d)", uint64(hdr), tag)
	}
	ckpt, recHead, recCount := readSelExt(h, hdr, base)
	if ckpt == pmem.Nil {
		return hdr, 0, 0, fmt.Errorf("funcds: selective header %#x has no checkpoint", uint64(hdr))
	}
	if damage := chainDamage(h, recHead, recCount); damage == nil {
		newHdr, replayed, _, err = RebuildSelective(h, hdr)
		return newHdr, replayed, 0, err
	}
	// Damaged chain: roll back to the checkpoint. The clone keeps its
	// reference through the new header's ckpt field plus one for serving
	// as the live state.
	if err := h.VerifyBlock(ckpt); err != nil {
		return hdr, 0, 0, err
	}
	h.Retain(ckpt)
	return selHdrOver(h, ckpt, tag, base), 0, recCount, nil
}
