package funcds

import (
	"bytes"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

func TestRecordEncodeDecodeRoundtrip(t *testing.T) {
	cases := []struct {
		prev       pmem.Addr
		kind, a, b uint64
	}{
		{pmem.Nil, RecMapSet, 0x1000, 0x2000},
		{pmem.Nil, RecMapSet, 0x1000, uint64(pmem.Nil)}, // set with nil value blob
		{0x40, RecMapDelete, 0x1000, 0},
		{0x40, RecVecPush, 12345, 0},
		{0x40, RecVecUpdate, 7, 99},
		{0x40, RecStackPush, 42, 0},
		{0x40, RecStackPop, 0, 0},
		{0x40, RecQueuePush, 17, 0},
		{0x40, RecQueuePop, 0, 0},
	}
	for _, c := range cases {
		buf := EncodeRecord(c.prev, c.kind, c.a, c.b)
		prev, kind, a, b, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", c.kind, err)
		}
		if prev != c.prev || kind != c.kind || a != c.a || b != c.b {
			t.Fatalf("kind %d: roundtrip (%#x,%d,%d,%d) != (%#x,%d,%d,%d)",
				c.kind, uint64(prev), kind, a, b, uint64(c.prev), c.kind, c.a, c.b)
		}
	}
}

func TestRecordDecodeRejectsInvalid(t *testing.T) {
	reject := [][]byte{
		EncodeRecord(pmem.Nil, 0, 0, 0),              // kind 0 reserved
		EncodeRecord(pmem.Nil, RecQueuePop+1, 0, 0),  // kind out of range
		EncodeRecord(pmem.Nil, ^uint64(0), 1, 2),     // absurd kind
		EncodeRecord(pmem.Nil, RecMapSet, 0, 0x20),   // map set without key blob
		EncodeRecord(pmem.Nil, RecMapDelete, 0, 0),   // map delete without key blob
		EncodeRecord(pmem.Nil, RecStackPop, 1, 0),    // pop with operand
		EncodeRecord(pmem.Nil, RecQueuePop, 0, 2),    // pop with operand
		EncodeRecord(pmem.Nil, RecVecPush, 0, 0)[:8], // truncated
		nil, // empty
	}
	for i, buf := range reject {
		if _, _, _, _, err := DecodeRecord(buf); err == nil {
			t.Fatalf("case %d: DecodeRecord accepted invalid record %x", i, buf)
		}
	}
}

// FuzzRecoveryRecord fuzzes the recovery-replay decoder both ways: raw
// bytes must never panic and must either be rejected or re-encode to the
// same canonical bytes; valid encodings must roundtrip.
func FuzzRecoveryRecord(f *testing.F) {
	f.Add(EncodeRecord(pmem.Nil, RecMapSet, 0x1000, 0x2000))
	f.Add(EncodeRecord(0x40, RecVecUpdate, 7, 99))
	f.Add(EncodeRecord(0x40, RecStackPop, 0, 0))
	f.Add(make([]byte, recordSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, buf []byte) {
		prev, kind, a, b, err := DecodeRecord(buf)
		if err != nil {
			return
		}
		if kind == 0 || kind > recKindMax {
			t.Fatalf("decoder passed out-of-range kind %d", kind)
		}
		re := EncodeRecord(prev, kind, a, b)
		if !bytes.Equal(re, buf[:recordSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", re, buf[:recordSize])
		}
		p2, k2, a2, b2, err := DecodeRecord(re)
		if err != nil || p2 != prev || k2 != kind || a2 != a || b2 != b {
			t.Fatalf("canonical roundtrip failed: %v", err)
		}
	})
}
