// Package funcds implements purely functional datastructures laid out in
// simulated persistent memory: a cons-list stack, a banker's two-list
// queue, a 32-way bit-partitioned trie vector, and a CHAMP hash-trie map
// and set. These are the "existing functional datastructures" of §4.2 of
// the MOD paper, already adapted per its recipe:
//
//  1. state is allocated from the persistent heap (package alloc),
//  2. nothing lives on the volatile stack across operations, and
//  3. every update operation flushes all modified PM cachelines with
//     weakly ordered clwbs and issues no ordering points — the single
//     fence belongs to the Commit step (package core).
//
// Every update is a pure function: it returns a new version (shadow) and
// leaves the original untouched, sharing unmodified subtrees structurally.
// Reference counts on reused children are maintained through the heap; the
// returned version owns one reference to its new root, which the caller
// releases when the version is discarded or superseded.
//
// Purity also makes every update replayable: applying the same operation
// again against a different base version yields an equivalent new version
// with no side effects beyond its own allocations. Package core's
// optimistic commit path depends on this — a writer that loses its
// publication CAS retires the losing shadow chain and re-applies the
// operation against the new committed base, and a flat combiner may apply
// an enrolled operation against a base the submitter never saw.
package funcds

import (
	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Node type tags, used by the allocator's reachability walkers.
const (
	TagBlob uint8 = 1 + iota
	TagStackHdr
	TagListNode
	TagQueueHdr
	TagVecHdr
	TagVecNode
	TagVecLeaf
	TagMapHdr
	TagMapNode
	TagMapCollision

	// TagParent is reserved for package core's parent objects
	// (CommitSiblings); its walker is registered there.
	TagParent

	// Selective persistence (record.go, DESIGN.md §10): one tag for the
	// durable operation-record cells, and a selective variant of each
	// structure header whose layout appends [ckptHdr][recHead][recCount]
	// to the base fields.
	TagRecord
	TagMapHdrSel
	TagVecHdrSel
	TagStackHdrSel
	TagQueueHdrSel
)

// RegisterWalkers installs the child-enumeration functions for every node
// type in this package on the heap. It must be called after Format or
// before Recover.
func RegisterWalkers(h *alloc.Heap) {
	h.RegisterWalker(TagBlob, walkNone)
	h.RegisterWalker(TagStackHdr, walkStackHdr)
	h.RegisterWalker(TagListNode, walkListNode)
	h.RegisterWalker(TagQueueHdr, walkQueueHdr)
	h.RegisterWalker(TagVecHdr, walkVecHdr)
	h.RegisterWalker(TagVecNode, walkVecNode)
	h.RegisterWalker(TagVecLeaf, walkNone)
	h.RegisterWalker(TagMapHdr, walkMapHdr)
	h.RegisterWalker(TagMapNode, walkMapNode)
	h.RegisterWalker(TagMapCollision, walkMapCollision)
	h.RegisterWalker(TagRecord, walkRecord)
	h.RegisterWalker(TagMapHdrSel, walkSelHdr(walkMapHdr, mapHdrSize))
	h.RegisterWalker(TagVecHdrSel, walkSelHdr(walkVecHdr, vecHdrSize))
	h.RegisterWalker(TagStackHdrSel, walkSelHdr(walkStackHdr, stackHdrSize))
	h.RegisterWalker(TagQueueHdrSel, walkSelHdr(walkQueueHdr, queueHdrSize))
}

func walkNone(*alloc.Heap, pmem.Addr, func(pmem.Addr)) {}

// Edit-context plumbing. Every structure value optionally carries an
// *alloc.Edit (WithEdit); node constructors allocate through it so the
// node is edit-owned — mutable in place for the rest of the FASE — and
// its flushes are deferred into the edit's dedup set. With a nil edit the
// constructors behave exactly as before: allocate eagerly and flush
// immediately.

// nodeAlloc allocates a node through the edit when one is active. A
// volatile node (selective persistence, record.go) carries the heap's
// volatile-node bit: its header is flush-pending as usual, but its payload
// stays DRAM-resident until a checkpoint flushes the crown.
func nodeAlloc(h *alloc.Heap, ed *alloc.Edit, size int, tag uint8, vol bool) pmem.Addr {
	if ed != nil {
		if vol {
			return ed.AllocVolatile(size, tag)
		}
		return ed.Alloc(size, tag)
	}
	if vol {
		return h.AllocVolatile(size, tag)
	}
	// Durable non-edit node: defer the header flush to flushNode's
	// SealNode, whose combined header+payload flush also stamps the
	// node's checksum word (DESIGN.md §13).
	return h.AllocNode(size, tag)
}

// flushNode makes a freshly written node's payload flush-pending. With an
// edit it is deferred into the edit's dedup set and registered for the
// Seal checksum pass; without one, SealNode stamps the checksum word and
// flushes header plus payload as one range — never more clwbs than the
// old eager-header-flush-plus-payload-flush pairing. Volatile node
// payloads are never flushed here — that is the point of selective
// persistence; the checkpoint flushes them in bulk.
//
// size must cover every payload byte the caller initialized: it is the
// node's checksum coverage, and any byte outside it is neither flushed
// nor verified.
func flushNode(h *alloc.Heap, ed *alloc.Edit, a pmem.Addr, size int, vol bool) {
	if vol {
		return
	}
	if ed != nil {
		ed.RecordNode(a, size)
		return
	}
	h.SealNode(a, size)
}

// recordEdit defers a flush of an in-place mutation on an edit-owned node.
// Mutations of volatile nodes skip the flush set (their payloads stay
// unflushed) but still count as elided copies.
func recordEdit(ed *alloc.Edit, a pmem.Addr, size int, vol bool) {
	if !vol {
		ed.Record(a, size)
	}
	ed.NoteCopyElided()
}

// Blob layout: [len u32][pad u32][bytes...]. Blobs box variable-length
// keys and values; they are immutable once flushed.
const blobHdrSize = 8

// newBlob allocates, writes, and flushes a byte-string box. Blobs are the
// leaf payloads of selective persistence and are always durable: record
// cells reference them, so recovered state never re-reads a volatile node
// to find user data.
func newBlob(h *alloc.Heap, ed *alloc.Edit, b []byte) pmem.Addr {
	a := nodeAlloc(h, ed, blobHdrSize+len(b), TagBlob, false)
	dev := h.Device()
	dev.WriteU32(a, uint32(len(b)))
	dev.WriteU32(a+4, 0)
	if len(b) > 0 {
		dev.Write(a+blobHdrSize, b)
	}
	flushNode(h, ed, a, blobHdrSize+len(b), false)
	return a
}

// blobLen returns the length of the blob at a.
func blobLen(h *alloc.Heap, a pmem.Addr) int {
	h.VerifyOnRead(a)
	return int(h.Device().ReadU32(a))
}

// blobBytes reads the blob's contents.
func blobBytes(h *alloc.Heap, a pmem.Addr) []byte {
	n := blobLen(h, a)
	b := make([]byte, n)
	h.Device().Read(a+blobHdrSize, b)
	return b
}

// blobEqual compares the blob at a with b without allocating.
func blobEqual(h *alloc.Heap, a pmem.Addr, b []byte) bool {
	if blobLen(h, a) != len(b) {
		return false
	}
	if len(b) == 0 {
		return true
	}
	got := make([]byte, len(b))
	h.Device().Read(a+blobHdrSize, got)
	for i := range b {
		if got[i] != b[i] {
			return false
		}
	}
	return true
}

// hash64 is FNV-1a, the hash used to place keys in the CHAMP trie.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}
