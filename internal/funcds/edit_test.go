package funcds

import (
	"fmt"
	"testing"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Property tests for the edit-context (transient) path: an operation
// sequence applied through an edit must produce a version whose durable
// contents are identical to the same sequence applied one shadow per
// operation. "Identical" is checked element-for-element (the two paths
// allocate different node addresses — the edit path writes far fewer
// nodes — so raw images legitimately differ; the observable structure
// contents may not).

type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newEditHeap(t *testing.T) *alloc.Heap {
	t.Helper()
	dev := pmem.New(pmem.DefaultConfig(64 << 20))
	h := alloc.Format(dev)
	RegisterWalkers(h)
	return h
}

func TestVectorEditMatchesPerOp(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		for _, ops := range []int{5, 33, 64, 200} {
			h := newEditHeap(t)
			plain := NewVector(h)
			edited := NewVector(h)

			r := &splitmix{s: seed}
			type op struct {
				push bool
				idx  uint64
				val  uint64
			}
			var script []op
			n := uint64(0)
			for i := 0; i < ops; i++ {
				if n == 0 || r.next()%3 != 0 {
					script = append(script, op{push: true, val: r.next()})
					n++
				} else {
					script = append(script, op{idx: r.next() % n, val: r.next()})
				}
			}

			for _, o := range script {
				if o.push {
					plain = plain.Push(o.val)
				} else {
					plain = plain.Update(o.idx, o.val)
				}
			}
			ed := h.BeginEdit()
			ev := edited.WithEdit(ed)
			for _, o := range script {
				if o.push {
					ev = ev.Push(o.val)
				} else {
					ev = ev.Update(o.idx, o.val)
				}
			}
			ed.Seal()

			want, got := plain.Elements(), ev.Elements()
			if len(want) != len(got) {
				t.Fatalf("seed=%d ops=%d: len %d vs %d", seed, ops, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seed=%d ops=%d: element %d: %#x vs %#x", seed, ops, i, want[i], got[i])
				}
			}
		}
	}
}

// TestVectorTailBoundaries pins the tail-buffer invariants at every fill
// boundary: counts that are 0/±1 around multiples of 32 and a deep trie.
func TestVectorTailBoundaries(t *testing.T) {
	h := newEditHeap(t)
	v := NewVector(h)
	const n = 1100 // crosses 32, 1024 (root grow), plus slack
	for i := uint64(0); i < n; i++ {
		v = v.Push(i)
		if v.Len() != i+1 {
			t.Fatalf("len after push %d = %d", i, v.Len())
		}
		if got := v.Get(i); got != i {
			t.Fatalf("Get(%d) right after push = %d", i, got)
		}
		if i%97 == 0 && i > 0 {
			if got := v.Get(0); got != 0 {
				t.Fatalf("Get(0) at len %d = %d", i+1, got)
			}
		}
	}
	for _, i := range []uint64{0, 31, 32, 33, 63, 64, 1023, 1024, 1025, n - 1} {
		if got := v.Get(i); got != i {
			t.Errorf("Get(%d) = %d", i, got)
		}
	}
	// Updates at boundaries, both regimes.
	for _, i := range []uint64{0, 31, 32, 1023, 1024, n - 1} {
		v = v.Update(i, i*10)
		if got := v.Get(i); got != i*10 {
			t.Errorf("after Update(%d): Get = %d, want %d", i, got, i*10)
		}
	}
}

func TestMapEditMatchesPerOp(t *testing.T) {
	for _, seed := range []uint64{3, 99} {
		h := newEditHeap(t)
		plain := NewMap(h)
		edited := NewMap(h)
		ed := h.BeginEdit()
		ev := edited.WithEdit(ed)

		r := &splitmix{s: seed}
		for i := 0; i < 300; i++ {
			k := []byte(fmt.Sprintf("k%03d", r.next()%120))
			switch r.next() % 3 {
			case 0, 1:
				val := []byte(fmt.Sprintf("v%016x", r.next()))
				var rep1, rep2 bool
				plain, rep1 = plain.Set(k, val)
				ev, rep2 = ev.Set(k, val)
				if rep1 != rep2 {
					t.Fatalf("seed=%d op %d: replaced %v vs %v", seed, i, rep1, rep2)
				}
			case 2:
				var rm1, rm2 bool
				plain, rm1 = plain.Delete(k)
				ev, rm2 = ev.Delete(k)
				if rm1 != rm2 {
					t.Fatalf("seed=%d op %d: removed %v vs %v", seed, i, rm1, rm2)
				}
			}
		}
		ed.Seal()

		if plain.Len() != ev.Len() {
			t.Fatalf("seed=%d: len %d vs %d", seed, plain.Len(), ev.Len())
		}
		plain.Range(func(k, val []byte) bool {
			got, ok := ev.Get(k)
			if !ok {
				t.Fatalf("seed=%d: key %q missing from edit map", seed, k)
			}
			if string(got) != string(val) {
				t.Fatalf("seed=%d: key %q: %q vs %q", seed, k, val, got)
			}
			return true
		})
	}
}

func TestStackQueueEditMatchesPerOp(t *testing.T) {
	h := newEditHeap(t)
	ps, pq := NewStack(h), NewQueue(h)
	ed := h.BeginEdit()
	es, eq := NewStack(h).WithEdit(ed), NewQueue(h).WithEdit(ed)

	r := &splitmix{s: 11}
	for i := 0; i < 400; i++ {
		v := r.next()
		if r.next()%3 != 0 {
			ps, es = ps.Push(v), es.Push(v)
			pq, eq = pq.Push(v), eq.Push(v)
		} else {
			var a, b uint64
			var oka, okb bool
			ps, a, oka = ps.Pop()
			es, b, okb = es.Pop()
			if oka != okb || a != b {
				t.Fatalf("stack pop %d: (%v %v) vs (%v %v)", i, a, oka, b, okb)
			}
			pq, a, oka = pq.Pop()
			eq, b, okb = eq.Pop()
			if oka != okb || a != b {
				t.Fatalf("queue pop %d: (%v %v) vs (%v %v)", i, a, oka, b, okb)
			}
		}
	}
	ed.Seal()

	se, see := ps.Elements(), es.Elements()
	if fmt.Sprint(se) != fmt.Sprint(see) {
		t.Errorf("stack contents differ:\n%v\n%v", se, see)
	}
	qe, qee := pq.Elements(), eq.Elements()
	if fmt.Sprint(qe) != fmt.Sprint(qee) {
		t.Errorf("queue contents differ:\n%v\n%v", qe, qee)
	}
}

// TestEditElidesCopiesAndFlushes pins the mechanism itself: a 64-op edit
// on one vector must allocate and flush far less than 64 per-op FASEs.
func TestEditElidesCopiesAndFlushes(t *testing.T) {
	run := func(batch bool) (allocs, flushes uint64) {
		dev := pmem.New(pmem.DefaultConfig(64 << 20))
		h := alloc.Format(dev)
		RegisterWalkers(h)
		v := NewVector(h)
		for i := uint64(0); i < 64; i++ { // preload outside the measurement
			v = v.Push(i)
		}
		a0, f0 := h.Stats().Allocs, dev.Stats().Flushes
		if batch {
			ed := h.BeginEdit()
			ev := v.WithEdit(ed)
			for i := uint64(0); i < 64; i++ {
				ev = ev.Push(1000 + i)
			}
			ed.Seal()
		} else {
			for i := uint64(0); i < 64; i++ {
				ed := h.BeginEdit()
				v = v.WithEdit(ed).Push(1000 + i)
				ed.Seal()
			}
		}
		return h.Stats().Allocs - a0, dev.Stats().Flushes - f0
	}
	perOpAllocs, perOpFlushes := run(false)
	editAllocs, editFlushes := run(true)
	if editAllocs*2 > perOpAllocs {
		t.Errorf("edit allocs %d not >= 2x better than per-op %d", editAllocs, perOpAllocs)
	}
	if editFlushes*2 > perOpFlushes {
		t.Errorf("edit flushes %d not >= 2x better than per-op %d", editFlushes, perOpFlushes)
	}
}

// TestEditRefcountsSurviveReclaim stresses the in-place release paths:
// superseded versions are released after each edit, and reclamation must
// leave exactly the live version's blocks.
func TestEditRefcountsSurviveReclaim(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(64 << 20))
	h := alloc.Format(dev)
	RegisterWalkers(h)

	m := NewMap(h)
	r := &splitmix{s: 5}
	for round := 0; round < 30; round++ {
		ed := h.BeginEdit()
		next := m.WithEdit(ed)
		for i := 0; i < 20; i++ {
			k := []byte(fmt.Sprintf("k%02d", r.next()%40))
			if r.next()%4 == 0 {
				next, _ = next.Delete(k)
			} else {
				next, _ = next.Set(k, []byte(fmt.Sprintf("v%d", round)))
			}
		}
		ed.Seal()
		dev.Sfence()
		if next.Addr() != m.Addr() {
			h.Release(m.Addr())
			m = MapAt(h, next.Addr())
		}
		h.Fence()
	}
	// The map must still be fully readable after all that reclamation.
	n := uint64(0)
	m.Range(func(k, v []byte) bool { n++; return true })
	if n != m.Len() {
		t.Errorf("Range saw %d entries, Len says %d", n, m.Len())
	}
}
