package funcds

import (
	"encoding/binary"
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Vector is a purely functional vector of 8-byte elements implemented as a
// 32-way bit-partitioned trie, the "broad but not deep" tree of §4.2 that
// avoids the bubbling-up-of-writes problem of conventional shadow paging.
// (The paper uses RRB trees; none of the evaluated operations — push_back,
// update, swap — need RRB's relaxed concatenation nodes, so this is the
// classic radix-balanced structure. See DESIGN.md §1.)
//
// An update path-copies the O(log32 n) nodes between root and leaf. This
// is precisely why the paper's Fig. 9 shows MOD losing to PMDK's flat
// array on vector workloads: ~4 × 256-byte nodes are written and flushed
// per 8-byte element update.
//
// Layout:
//
//	header (TagVecHdr):  [count u64][shift u32][pad u32][root u64]
//	node   (TagVecNode): 32 × [child u64]
//	leaf   (TagVecLeaf): 32 × [value u64]
type Vector struct {
	h    *alloc.Heap
	addr pmem.Addr
}

const (
	vecBits     = 5
	vecWidth    = 1 << vecBits // 32
	vecMask     = vecWidth - 1
	vecHdrSize  = 24
	vecNodeSize = vecWidth * 8
)

// NewVector allocates an empty durable vector (flushed, not fenced).
func NewVector(h *alloc.Heap) Vector {
	a := h.Alloc(vecHdrSize, TagVecHdr)
	dev := h.Device()
	dev.Zero(a, vecHdrSize)
	dev.FlushRange(a-8, vecHdrSize+8)
	return Vector{h: h, addr: a}
}

// VectorAt adopts an existing vector header, e.g. after recovery.
func VectorAt(h *alloc.Heap, addr pmem.Addr) Vector { return Vector{h: h, addr: addr} }

// Addr returns the header address of this version.
func (v Vector) Addr() pmem.Addr { return v.addr }

// Heap returns the owning heap.
func (v Vector) Heap() *alloc.Heap { return v.h }

func (v Vector) fields() (count uint64, shift uint32, root pmem.Addr) {
	dev := v.h.Device()
	return dev.ReadU64(v.addr), dev.ReadU32(v.addr + 8), pmem.Addr(dev.ReadU64(v.addr + 16))
}

// Len returns the number of elements.
func (v Vector) Len() uint64 {
	count, _, _ := v.fields()
	return count
}

func newVecHdr(h *alloc.Heap, count uint64, shift uint32, root pmem.Addr) pmem.Addr {
	a := h.Alloc(vecHdrSize, TagVecHdr)
	dev := h.Device()
	dev.WriteU64(a, count)
	dev.WriteU32(a+8, shift)
	dev.WriteU32(a+12, 0)
	dev.WriteU64(a+16, uint64(root))
	dev.FlushRange(a-8, vecHdrSize+8)
	return a
}

// newVecLeaf allocates a leaf containing the values in vals; the remaining
// slots are zeroed (they are never read, but zeroing keeps durable images
// deterministic for crash tests).
func newVecLeaf(h *alloc.Heap, vals []uint64) pmem.Addr {
	var slots [vecWidth]uint64
	copy(slots[:], vals)
	return writeNode(h, TagVecLeaf, slots)
}

// readNode reads all 32 slots of a node or leaf with one bulk access.
func readNode(h *alloc.Heap, a pmem.Addr) [vecWidth]uint64 {
	var buf [vecNodeSize]byte
	h.Device().Read(a, buf[:])
	var out [vecWidth]uint64
	for i := 0; i < vecWidth; i++ {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out
}

// writeNode allocates a node/leaf with the given slots and flushes it.
func writeNode(h *alloc.Heap, tag uint8, slots [vecWidth]uint64) pmem.Addr {
	a := h.Alloc(vecNodeSize, tag)
	var buf [vecNodeSize]byte
	for i := 0; i < vecWidth; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], slots[i])
	}
	dev := h.Device()
	dev.Write(a, buf[:])
	dev.FlushRange(a-8, vecNodeSize+8)
	return a
}

// copyNodeReplace clones an internal node, replacing slot idx with child.
// All other non-nil children are retained (they gain a parent). The new
// child's reference is transferred from the caller.
func copyNodeReplace(h *alloc.Heap, node pmem.Addr, idx int, child pmem.Addr) pmem.Addr {
	slots := readNode(h, node)
	for i, c := range slots {
		if i != idx && c != 0 {
			h.Retain(pmem.Addr(c))
		}
	}
	slots[idx] = uint64(child)
	return writeNode(h, TagVecNode, slots)
}

// Get returns the element at index i.
func (v Vector) Get(i uint64) uint64 {
	count, shift, root := v.fields()
	if i >= count {
		panic(fmt.Sprintf("funcds: vector index %d out of range (len %d)", i, count))
	}
	dev := v.h.Device()
	node := root
	for s := shift; s > 0; s -= vecBits {
		node = pmem.Addr(dev.ReadU64(node + pmem.Addr(((i>>s)&vecMask)*8)))
	}
	return dev.ReadU64(node + pmem.Addr((i&vecMask)*8))
}

// Update returns a new version with element i replaced by val, path-
// copying one node per level.
func (v Vector) Update(i uint64, val uint64) Vector {
	count, shift, root := v.fields()
	if i >= count {
		panic(fmt.Sprintf("funcds: vector update index %d out of range (len %d)", i, count))
	}
	newRoot := v.assoc(root, shift, i, val)
	hdr := newVecHdr(v.h, count, shift, newRoot)
	return Vector{h: v.h, addr: hdr}
}

func (v Vector) assoc(node pmem.Addr, shift uint32, i uint64, val uint64) pmem.Addr {
	if shift == 0 {
		slots := readNode(v.h, node)
		slots[i&vecMask] = val
		return writeNode(v.h, TagVecLeaf, slots)
	}
	idx := int((i >> shift) & vecMask)
	child := pmem.Addr(v.h.Device().ReadU64(node + pmem.Addr(idx*8)))
	newChild := v.assoc(child, shift-vecBits, i, val)
	return copyNodeReplace(v.h, node, idx, newChild)
}

// Push returns a new version with val appended.
func (v Vector) Push(val uint64) Vector {
	count, shift, root := v.fields()
	var newRoot pmem.Addr
	newShift := shift
	switch {
	case count == 0:
		newRoot = newVecLeaf(v.h, []uint64{val})
	case count == uint64(vecWidth)<<shift:
		// Root is full: grow a level. The old root keeps one reference
		// from the old header and gains one from the new node.
		v.h.Retain(root)
		var slots [vecWidth]uint64
		slots[0] = uint64(root)
		slots[1] = uint64(v.newPath(shift, val))
		newRoot = writeNode(v.h, TagVecNode, slots)
		newShift = shift + vecBits
	default:
		newRoot = v.pushRec(root, shift, count, val)
	}
	hdr := newVecHdr(v.h, count+1, newShift, newRoot)
	return Vector{h: v.h, addr: hdr}
}

// newPath builds a chain of singleton nodes of the given depth ending in a
// one-element leaf.
func (v Vector) newPath(shift uint32, val uint64) pmem.Addr {
	node := newVecLeaf(v.h, []uint64{val})
	for s := uint32(0); s < shift; s += vecBits {
		var slots [vecWidth]uint64
		slots[0] = uint64(node)
		node = writeNode(v.h, TagVecNode, slots)
	}
	return node
}

func (v Vector) pushRec(node pmem.Addr, shift uint32, count uint64, val uint64) pmem.Addr {
	if shift == 0 {
		// node is a leaf with count (< 32) elements.
		slots := readNode(v.h, node)
		slots[count&vecMask] = val
		return writeNode(v.h, TagVecLeaf, slots)
	}
	idx := int((count >> shift) & vecMask)
	if count&((1<<shift)-1) == 0 {
		// Subtree at idx does not exist yet: graft a fresh path.
		return copyNodeReplace(v.h, node, idx, v.newPath(shift-vecBits, val))
	}
	child := pmem.Addr(v.h.Device().ReadU64(node + pmem.Addr(idx*8)))
	newChild := v.pushRec(child, shift-vecBits, count, val)
	return copyNodeReplace(v.h, node, idx, newChild)
}

// Elements returns the vector contents (for tests).
func (v Vector) Elements() []uint64 {
	n := v.Len()
	out := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		out[i] = v.Get(i)
	}
	return out
}

func walkVecHdr(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if root := pmem.Addr(h.Device().ReadU64(a + 16)); root != pmem.Nil {
		visit(root)
	}
}

func walkVecNode(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	dev := h.Device()
	for i := 0; i < vecWidth; i++ {
		if c := pmem.Addr(dev.ReadU64(a + pmem.Addr(i*8))); c != pmem.Nil {
			visit(c)
		}
	}
}
