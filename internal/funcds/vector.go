package funcds

import (
	"encoding/binary"
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Vector is a purely functional vector of 8-byte elements implemented as a
// 32-way bit-partitioned trie with a Clojure-style tail buffer, the "broad
// but not deep" tree of §4.2 that avoids the bubbling-up-of-writes problem
// of conventional shadow paging. (The paper uses RRB trees; none of the
// evaluated operations — push_back, update, swap — need RRB's relaxed
// concatenation nodes, so this is the classic radix-balanced structure.
// See DESIGN.md §1.)
//
// The tail buffer holds the last 1–32 elements outside the trie, so an
// append copies one leaf and one header instead of path-copying the whole
// spine; the tail is pushed into the trie only when it fills (once per 32
// appends). Under an edit context (DESIGN.md §8) an append into an
// edit-owned tail mutates it in place: a run of appends inside one FASE
// costs one flush per tail fill.
//
// An update path-copies the O(log32 n) nodes between root and leaf (or
// just the tail leaf). This is why the paper's Fig. 9 shows MOD losing to
// PMDK's flat array on vector workloads: several 256-byte nodes are
// written and flushed per 8-byte element update.
//
// Layout:
//
//	header (TagVecHdr):  [count u64][shift u32][pad u32][root u64][tail u64]
//	node   (TagVecNode): 32 × [child u64]
//	leaf   (TagVecLeaf): 32 × [value u64]
//
// Invariants: elements [0, tailOffset) live in the trie (all leaves
// full), elements [tailOffset, count) in the tail leaf; count > 0 implies
// a non-nil tail holding 1–32 elements; root is Nil while tailOffset is
// 0, and is a single leaf (shift 0) while tailOffset is 32.
type Vector struct {
	h    *alloc.Heap
	addr pmem.Addr
	ed   *alloc.Edit
	sel  bool // selective persistence: volatile trie, record chain (record.go)
}

const (
	vecBits     = 5
	vecWidth    = 1 << vecBits // 32
	vecMask     = vecWidth - 1
	vecHdrSize  = 32
	vecNodeSize = vecWidth * 8
)

// tailOffset returns the index of the first tail element: the largest
// multiple of 32 strictly below count (0 when count <= 32).
func tailOffset(count uint64) uint64 {
	if count <= vecWidth {
		return 0
	}
	return ((count - 1) >> vecBits) << vecBits
}

// NewVector allocates an empty durable vector (flushed, not fenced).
func NewVector(h *alloc.Heap) Vector {
	a := h.AllocNode(vecHdrSize, TagVecHdr)
	h.Device().Zero(a, vecHdrSize)
	h.SealNode(a, vecHdrSize)
	return Vector{h: h, addr: a}
}

// NewVectorSelective allocates an empty selectively persisted vector:
// trie nodes and leaves stay volatile-clean, every update appends a
// durable record cell, and the checkpoint clone starts as an empty normal
// vector (flushed, not fenced).
func NewVectorSelective(h *alloc.Heap) Vector {
	ckpt := NewVector(h).Addr()
	a := h.AllocNode(vecHdrSize+selExtSize, TagVecHdrSel)
	h.Device().Zero(a, vecHdrSize)
	writeSelExt(h, a, vecHdrSize, ckpt, pmem.Nil, 0)
	h.SealNode(a, vecHdrSize+selExtSize)
	return Vector{h: h, addr: a, sel: true}
}

// VectorAt adopts an existing vector header, e.g. after recovery. The
// selective variant is recognized by its tag.
func VectorAt(h *alloc.Heap, addr pmem.Addr) Vector {
	return Vector{h: h, addr: addr, sel: h.Tag(addr) == TagVecHdrSel}
}

// WithEdit binds the version to a per-FASE edit context: nodes the edit
// allocates are mutated in place by subsequent operations on the returned
// value and its successors, and their flushes are deferred to Edit.Seal.
func (v Vector) WithEdit(ed *alloc.Edit) Vector {
	return Vector{h: v.h, addr: v.addr, ed: ed, sel: v.sel}
}

// Addr returns the header address of this version.
func (v Vector) Addr() pmem.Addr { return v.addr }

// Heap returns the owning heap.
func (v Vector) Heap() *alloc.Heap { return v.h }

func (v Vector) fields() (count uint64, shift uint32, root, tail pmem.Addr) {
	dev := v.h.Device()
	return dev.ReadU64(v.addr), dev.ReadU32(v.addr + 8),
		pmem.Addr(dev.ReadU64(v.addr + 16)), pmem.Addr(dev.ReadU64(v.addr + 24))
}

// Len returns the number of elements.
func (v Vector) Len() uint64 { return v.h.Device().ReadU64(v.addr) }

// newVecHdr allocates a header; root and tail references transfer in.
func newVecHdr(h *alloc.Heap, ed *alloc.Edit, count uint64, shift uint32, root, tail pmem.Addr) pmem.Addr {
	a := nodeAlloc(h, ed, vecHdrSize, TagVecHdr, false)
	dev := h.Device()
	dev.WriteU64(a, count)
	dev.WriteU32(a+8, shift)
	dev.WriteU32(a+12, 0)
	dev.WriteU64(a+16, uint64(root))
	dev.WriteU64(a+24, uint64(tail))
	flushNode(h, ed, a, vecHdrSize, false)
	return a
}

// setHdr produces a header with the given fields: in place when the
// receiver's header is edit-owned, otherwise as a fresh allocation whose
// unchanged children the caller has retained. Changed-child references
// transfer in; in the in-place case the header's references to replaced
// children are released via the release list. Selective vectors
// additionally install rec at the head of the record chain.
func (v Vector) setHdr(count uint64, shift uint32, root, tail, rec pmem.Addr, release ...pmem.Addr) Vector {
	if v.ed.Owns(v.addr) {
		dev := v.h.Device()
		dev.WriteU64(v.addr, count)
		dev.WriteU32(v.addr+8, shift)
		dev.WriteU64(v.addr+16, uint64(root))
		dev.WriteU64(v.addr+24, uint64(tail))
		size := vecHdrSize
		if v.sel {
			ckpt, oldRec, recCount := readSelExt(v.h, v.addr, vecHdrSize)
			writeSelExt(v.h, v.addr, vecHdrSize, ckpt, rec, recCount+1)
			size += selExtSize
			if oldRec != pmem.Nil {
				v.h.Release(oldRec)
			}
		}
		recordEdit(v.ed, v.addr, size, false)
		for _, r := range release {
			v.h.Release(r)
		}
		return v
	}
	if v.sel {
		ckpt, _, recCount := readSelExt(v.h, v.addr, vecHdrSize)
		hdr := nodeAlloc(v.h, v.ed, vecHdrSize+selExtSize, TagVecHdrSel, false)
		dev := v.h.Device()
		dev.WriteU64(hdr, count)
		dev.WriteU32(hdr+8, shift)
		dev.WriteU32(hdr+12, 0)
		dev.WriteU64(hdr+16, uint64(root))
		dev.WriteU64(hdr+24, uint64(tail))
		writeSelExt(v.h, hdr, vecHdrSize, ckpt, rec, recCount+1)
		flushNode(v.h, v.ed, hdr, vecHdrSize+selExtSize, false)
		v.h.Retain(ckpt)
		return Vector{h: v.h, addr: hdr, ed: v.ed, sel: true}
	}
	hdr := newVecHdr(v.h, v.ed, count, shift, root, tail)
	return Vector{h: v.h, addr: hdr, ed: v.ed}
}

// newVecLeaf allocates a leaf containing the values in vals; the remaining
// slots are zeroed (they are never read, but zeroing keeps durable images
// deterministic for crash tests).
func newVecLeaf(h *alloc.Heap, ed *alloc.Edit, vol bool, vals []uint64) pmem.Addr {
	var slots [vecWidth]uint64
	copy(slots[:], vals)
	return writeNode(h, ed, vol, TagVecLeaf, slots)
}

// readNode reads all 32 slots of a node or leaf with one bulk access,
// served from the DRAM node cache when enabled (edit-owned nodes bypass).
func readNode(h *alloc.Heap, ed *alloc.Edit, a pmem.Addr) [vecWidth]uint64 {
	buf := h.ReadCached(a, vecNodeSize, ed)
	var out [vecWidth]uint64
	for i := 0; i < vecWidth; i++ {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out
}

// writeNode allocates a node/leaf with the given slots and flushes it
// (volatile under selective persistence).
func writeNode(h *alloc.Heap, ed *alloc.Edit, vol bool, tag uint8, slots [vecWidth]uint64) pmem.Addr {
	a := nodeAlloc(h, ed, vecNodeSize, tag, vol)
	var buf [vecNodeSize]byte
	for i := 0; i < vecWidth; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], slots[i])
	}
	dev := h.Device()
	dev.Write(a, buf[:])
	flushNode(h, ed, a, vecNodeSize, vol)
	return a
}

// copyNodeReplace clones an internal node, replacing slot idx with child.
// All other non-nil children are retained (they gain a parent). The new
// child's reference is transferred from the caller.
func copyNodeReplace(h *alloc.Heap, ed *alloc.Edit, vol bool, node pmem.Addr, idx int, child pmem.Addr) pmem.Addr {
	slots := readNode(h, ed, node)
	for i, c := range slots {
		if i != idx && c != 0 {
			h.Retain(pmem.Addr(c))
		}
	}
	slots[idx] = uint64(child)
	return writeNode(h, ed, vol, TagVecNode, slots)
}

// replaceChild installs child at slot idx of node: a single in-place slot
// write when node is edit-owned (releasing the header-held reference to
// the displaced old child, if any), a path copy otherwise.
func (v Vector) replaceChild(node pmem.Addr, idx int, child, old pmem.Addr) pmem.Addr {
	if v.ed.Owns(node) {
		v.h.Device().WriteU64(node+pmem.Addr(idx*8), uint64(child))
		recordEdit(v.ed, node+pmem.Addr(idx*8), 8, v.sel)
		if old != pmem.Nil {
			v.h.Release(old)
		}
		return node
	}
	return copyNodeReplace(v.h, v.ed, v.sel, node, idx, child)
}

// Get returns the element at index i.
func (v Vector) Get(i uint64) uint64 {
	count, shift, root, tail := v.fields()
	if i >= count {
		panic(fmt.Sprintf("funcds: vector index %d out of range (len %d)", i, count))
	}
	dev := v.h.Device()
	if i >= tailOffset(count) {
		return dev.ReadU64(tail + pmem.Addr((i&vecMask)*8))
	}
	node := root
	for s := shift; s > 0; s -= vecBits {
		node = pmem.Addr(dev.ReadU64(node + pmem.Addr(((i>>s)&vecMask)*8)))
	}
	return dev.ReadU64(node + pmem.Addr((i&vecMask)*8))
}

// Update returns a new version with element i replaced by val, copying
// the tail leaf or path-copying one trie node per level — or mutating in
// place where the edit context owns the nodes.
func (v Vector) Update(i uint64, val uint64) Vector {
	count, shift, root, tail := v.fields()
	if i >= count {
		panic(fmt.Sprintf("funcds: vector update index %d out of range (len %d)", i, count))
	}
	rec := pmem.Nil
	if v.sel {
		_, oldRec, _ := readSelExt(v.h, v.addr, vecHdrSize)
		rec = newRecord(v.h, v.ed, oldRec, RecVecUpdate, i, val)
	}
	if i >= tailOffset(count) {
		if v.ed.Owns(tail) {
			v.h.Device().WriteU64(tail+pmem.Addr((i&vecMask)*8), val)
			recordEdit(v.ed, tail+pmem.Addr((i&vecMask)*8), 8, v.sel)
			if v.sel {
				return Vector{h: v.h, addr: selAppendRecord(v.h, v.ed, v.addr, rec), ed: v.ed, sel: true}
			}
			return v
		}
		slots := readNode(v.h, v.ed, tail)
		slots[i&vecMask] = val
		newTail := writeNode(v.h, v.ed, v.sel, TagVecLeaf, slots)
		if !v.ed.Owns(v.addr) && root != pmem.Nil {
			v.h.Retain(root)
		}
		return v.setHdr(count, shift, root, newTail, rec, tail)
	}
	newRoot := v.assoc(root, shift, i, val)
	if newRoot == root {
		if v.sel {
			return Vector{h: v.h, addr: selAppendRecord(v.h, v.ed, v.addr, rec), ed: v.ed, sel: true}
		}
		return v
	}
	if !v.ed.Owns(v.addr) {
		v.h.Retain(tail)
	}
	return v.setHdr(count, shift, newRoot, tail, rec, root)
}

func (v Vector) assoc(node pmem.Addr, shift uint32, i uint64, val uint64) pmem.Addr {
	if shift == 0 {
		if v.ed.Owns(node) {
			v.h.Device().WriteU64(node+pmem.Addr((i&vecMask)*8), val)
			recordEdit(v.ed, node+pmem.Addr((i&vecMask)*8), 8, v.sel)
			return node
		}
		slots := readNode(v.h, v.ed, node)
		slots[i&vecMask] = val
		return writeNode(v.h, v.ed, v.sel, TagVecLeaf, slots)
	}
	idx := int((i >> shift) & vecMask)
	child := pmem.Addr(v.h.Device().ReadU64(node + pmem.Addr(idx*8)))
	newChild := v.assoc(child, shift-vecBits, i, val)
	if newChild == child {
		return node
	}
	return v.replaceChild(node, idx, newChild, child)
}

// Push returns a new version with val appended. The tail absorbs the
// append (one leaf copy, or an in-place slot write when edit-owned); a
// full tail is first pushed into the trie, which is the only path-copying
// case — once per 32 appends.
func (v Vector) Push(val uint64) Vector {
	count, shift, root, tail := v.fields()
	rec := pmem.Nil
	if v.sel {
		_, oldRec, _ := readSelExt(v.h, v.addr, vecHdrSize)
		rec = newRecord(v.h, v.ed, oldRec, RecVecPush, val, 0)
	}
	if count == 0 {
		newTail := newVecLeaf(v.h, v.ed, v.sel, []uint64{val})
		return v.setHdr(1, 0, pmem.Nil, newTail, rec)
	}
	tailLen := count - tailOffset(count)
	if tailLen < vecWidth {
		if v.ed.Owns(tail) {
			dev := v.h.Device()
			dev.WriteU64(tail+pmem.Addr(tailLen*8), val)
			recordEdit(v.ed, tail+pmem.Addr(tailLen*8), 8, v.sel)
			if v.ed.Owns(v.addr) {
				dev.WriteU64(v.addr, count+1)
				size := 8
				if v.sel {
					ckpt, oldRec, recCount := readSelExt(v.h, v.addr, vecHdrSize)
					writeSelExt(v.h, v.addr, vecHdrSize, ckpt, rec, recCount+1)
					size = vecHdrSize + selExtSize
					if oldRec != pmem.Nil {
						v.h.Release(oldRec)
					}
				}
				recordEdit(v.ed, v.addr, size, false)
				return v
			}
			if root != pmem.Nil {
				v.h.Retain(root)
			}
			v.h.Retain(tail)
			return v.setHdr(count+1, shift, root, tail, rec)
		}
		slots := readNode(v.h, v.ed, tail)
		slots[tailLen] = val
		newTail := writeNode(v.h, v.ed, v.sel, TagVecLeaf, slots)
		if !v.ed.Owns(v.addr) && root != pmem.Nil {
			v.h.Retain(root)
		}
		return v.setHdr(count+1, shift, root, newTail, rec, tail)
	}

	// Tail is full: push it into the trie and start a fresh tail. For an
	// owned header the tail reference transfers from the tail field into
	// the trie; otherwise the old header keeps its reference and the trie
	// becomes a second parent.
	to := tailOffset(count) // index the full tail's elements start at
	newTail := newVecLeaf(v.h, v.ed, v.sel, []uint64{val})
	hdrOwned := v.ed.Owns(v.addr)
	if !hdrOwned {
		v.h.Retain(tail)
	}
	var newRoot pmem.Addr
	newShift := shift
	switch {
	case root == pmem.Nil:
		// First fill: the tail leaf becomes the trie.
		newRoot = tail
	case to == uint64(vecWidth)<<shift:
		// Trie is full: grow a level. The old root's reference transfers
		// into the new node for an owned header (whose root field will be
		// overwritten); otherwise the node gains a reference and the old
		// header keeps its own.
		if !hdrOwned {
			v.h.Retain(root)
		}
		var slots [vecWidth]uint64
		slots[0] = uint64(root)
		slots[1] = uint64(v.wrapLeaf(shift, tail))
		newRoot = writeNode(v.h, v.ed, v.sel, TagVecNode, slots)
		newShift = shift + vecBits
	default:
		newRoot = v.pushLeaf(root, shift, to, tail)
	}
	if hdrOwned {
		dev := v.h.Device()
		dev.WriteU64(v.addr, count+1)
		dev.WriteU32(v.addr+8, newShift)
		dev.WriteU64(v.addr+16, uint64(newRoot))
		dev.WriteU64(v.addr+24, uint64(newTail))
		size := vecHdrSize
		if v.sel {
			ckpt, oldRec, recCount := readSelExt(v.h, v.addr, vecHdrSize)
			writeSelExt(v.h, v.addr, vecHdrSize, ckpt, rec, recCount+1)
			size += selExtSize
			if oldRec != pmem.Nil {
				v.h.Release(oldRec)
			}
		}
		recordEdit(v.ed, v.addr, size, false)
		if root != pmem.Nil && newRoot != root && to != uint64(vecWidth)<<shift {
			// pushLeaf path-copied the root: the header's reference to the
			// old root is dropped (the grow case transferred it instead).
			v.h.Release(root)
		}
		return v
	}
	if root != pmem.Nil && newRoot == root {
		// In-place pushLeaf deep in the trie left the root pointer
		// unchanged; the new header is a second parent.
		v.h.Retain(root)
	}
	return v.setHdr(count+1, newShift, newRoot, newTail, rec)
}

// wrapLeaf wraps a leaf in singleton interior nodes so it roots a subtree
// at the given level (0 returns the leaf itself).
func (v Vector) wrapLeaf(level uint32, leaf pmem.Addr) pmem.Addr {
	node := leaf
	for s := uint32(0); s < level; s += vecBits {
		var slots [vecWidth]uint64
		slots[0] = uint64(node)
		node = writeNode(v.h, v.ed, v.sel, TagVecNode, slots)
	}
	return node
}

// pushLeaf inserts the full tail leaf at trie index to (a multiple of 32),
// path-copying — or mutating in place where owned — one node per level.
// The caller guarantees the trie is not full and root is not Nil.
func (v Vector) pushLeaf(node pmem.Addr, shift uint32, to uint64, leaf pmem.Addr) pmem.Addr {
	idx := int((to >> shift) & vecMask)
	if shift == vecBits {
		// Children of this node are leaves; slot idx is empty.
		return v.replaceChild(node, idx, leaf, pmem.Nil)
	}
	if to&((1<<shift)-1) == 0 {
		// Whole subtree at idx is missing: graft a singleton path.
		return v.replaceChild(node, idx, v.wrapLeaf(shift-vecBits, leaf), pmem.Nil)
	}
	child := pmem.Addr(v.h.Device().ReadU64(node + pmem.Addr(idx*8)))
	newChild := v.pushLeaf(child, shift-vecBits, to, leaf)
	if newChild == child {
		return node
	}
	return v.replaceChild(node, idx, newChild, child)
}

// Elements returns the vector contents (for tests).
func (v Vector) Elements() []uint64 {
	n := v.Len()
	out := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		out[i] = v.Get(i)
	}
	return out
}

func walkVecHdr(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	if root := pmem.Addr(h.Device().ReadU64(a + 16)); root != pmem.Nil {
		visit(root)
	}
	if tail := pmem.Addr(h.Device().ReadU64(a + 24)); tail != pmem.Nil {
		visit(tail)
	}
}

func walkVecNode(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	dev := h.Device()
	for i := 0; i < vecWidth; i++ {
		if c := pmem.Addr(dev.ReadU64(a + pmem.Addr(i*8))); c != pmem.Nil {
			visit(c)
		}
	}
}
