package funcds

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/mod-ds/mod/internal/pmem"
)

func key64(i uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

func val32(i uint64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

func TestMapSetGet(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		var replaced bool
		m, replaced = m.Set(key64(i), val32(i))
		if replaced {
			t.Fatalf("fresh key %d reported replaced", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		got, ok := m.Get(key64(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("key %d has wrong value", i)
		}
	}
	if _, ok := m.Get(key64(n + 5)); ok {
		t.Fatal("absent key found")
	}
}

func TestMapReplaceValue(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	m, _ = m.Set([]byte("k"), []byte("v1"))
	m2, replaced := m.Set([]byte("k"), []byte("v2"))
	if !replaced {
		t.Fatal("replace not reported")
	}
	if m2.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", m2.Len())
	}
	got, _ := m2.Get([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("value = %q, want v2", got)
	}
	old, _ := m.Get([]byte("k"))
	if string(old) != "v1" {
		t.Fatalf("old version value = %q, want v1", old)
	}
}

func TestMapDelete(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	for i := uint64(0); i < 500; i++ {
		m, _ = m.Set(key64(i), val32(i))
	}
	for i := uint64(0); i < 500; i += 2 {
		var removed bool
		m, removed = m.Delete(key64(i))
		if !removed {
			t.Fatalf("key %d not removed", i)
		}
	}
	if m.Len() != 250 {
		t.Fatalf("Len = %d, want 250", m.Len())
	}
	for i := uint64(0); i < 500; i++ {
		_, ok := m.Get(key64(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d presence = %v, want %v", i, ok, want)
		}
	}
	if _, removed := m.Delete(key64(1000)); removed {
		t.Fatal("removing absent key reported removed")
	}
}

func TestMapRange(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	want := map[string]string{}
	for i := uint64(0); i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		v := fmt.Sprintf("val-%d", i)
		m, _ = m.Set([]byte(k), []byte(v))
		want[k] = v
	}
	got := map[string]string{}
	m.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%q] = %q, want %q", k, got[k], v)
		}
	}
	// Early termination.
	count := 0
	m.Range(func(_, _ []byte) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early-terminated Range visited %d, want 10", count)
	}
}

func TestMapOldVersionsIndependent(t *testing.T) {
	h := newTestHeap(t)
	versions := []Map{NewMap(h)}
	for i := uint64(1); i <= 50; i++ {
		next, _ := versions[len(versions)-1].Set(key64(i), val32(i))
		versions = append(versions, next)
	}
	for vi, m := range versions {
		if m.Len() != uint64(vi) {
			t.Fatalf("version %d has Len %d", vi, m.Len())
		}
		for i := uint64(1); i <= 50; i++ {
			_, ok := m.Get(key64(i))
			if want := i <= uint64(vi); ok != want {
				t.Fatalf("version %d key %d presence %v, want %v", vi, i, ok, want)
			}
		}
	}
}

func TestMapStructuralSharingSpaceOverhead(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	for i := uint64(0); i < 50_000; i++ {
		old := m.Addr()
		m, _ = m.Set(key64(i), val32(i))
		// Discard old versions as the Basic interface would,
		// draining the quarantine every few operations.
		h.Release(old)
		if i%64 == 0 {
			h.Fence()
		}
	}
	h.Fence()
	live := h.Stats().LiveBytes
	before := h.Stats().CumBytes
	m2, _ := m.Set(key64(999_999), val32(1))
	grew := h.Stats().CumBytes - before
	_ = m2
	// §6.5: each update needs ~0.00002–0.00004× of the structure.
	ratio := float64(grew) / float64(live)
	if ratio > 0.001 {
		t.Fatalf("shadow overhead ratio %.6f too large (grew %d of %d live)", ratio, grew, live)
	}
}

func TestMapReclamationReturnsToBaseline(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	for i := uint64(0); i < 2000; i++ {
		old := m.Addr()
		m, _ = m.Set(key64(i), val32(i))
		h.Release(old)
		h.Fence()
	}
	// Delete everything, then release the final version: nothing live.
	for i := uint64(0); i < 2000; i++ {
		old := m.Addr()
		var removed bool
		m, removed = m.Delete(key64(i))
		if !removed {
			t.Fatalf("key %d missing during teardown", i)
		}
		h.Release(old)
		h.Fence()
	}
	h.Release(m.Addr())
	h.Fence()
	if got := h.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d after releasing everything, want 0", got)
	}
}

func TestMapNoFencesAllFlushed(t *testing.T) {
	h := newTestHeap(t)
	dev := h.Device()
	before := dev.Stats()
	m := NewMap(h)
	for i := uint64(0); i < 300; i++ {
		m, _ = m.Set(key64(i), val32(i))
	}
	delta := dev.Stats().Sub(before)
	if delta.Fences != 0 {
		t.Fatalf("pure map ops issued %d fences", delta.Fences)
	}
	if dev.DirtyLines() != 0 {
		t.Fatalf("%d dirty lines left unflushed", dev.DirtyLines())
	}
}

func TestMapCollisionBuckets(t *testing.T) {
	// Drive the collision machinery directly: merge two distinct keys
	// whose hashes agree on all trie levels (shift >= collisionShift).
	h := newTestHeap(t)
	m := NewMap(h)
	k1 := newBlob(h, nil, []byte("alpha"))
	k2 := newBlob(h, nil, []byte("beta"))
	v1 := newBlob(h, nil, []byte("1"))
	v2 := newBlob(h, nil, []byte("2"))
	col := m.mergeTwo(collisionShift, mapEntry{k1, v1}, 0x1234, mapEntry{k2, v2}, 0x1234)
	if h.Tag(col) != TagMapCollision {
		t.Fatalf("mergeTwo at max depth built tag %d, want collision", h.Tag(col))
	}
	// Insert a third colliding key through insertRec.
	k3 := newBlob(h, nil, []byte("gamma"))
	v3 := newBlob(h, nil, []byte("3"))
	col2, replaced := m.insertRec(col, collisionShift, 0x1234, []byte("gamma"), k3, v3)
	if replaced {
		t.Fatal("new key reported replaced")
	}
	entries := readCollision(h, nil, col2)
	if len(entries) != 3 {
		t.Fatalf("collision bucket has %d entries, want 3", len(entries))
	}
	// Replace within the bucket.
	v4 := newBlob(h, nil, []byte("4"))
	k2b := newBlob(h, nil, []byte("beta"))
	col3, replaced := m.insertRec(col2, collisionShift, 0x1234, []byte("beta"), k2b, v4)
	if !replaced {
		t.Fatal("existing key not reported replaced")
	}
	h.Release(k2b)
	found := false
	for _, e := range readCollision(h, nil, col3) {
		if blobEqual(h, e.key, []byte("beta")) {
			found = true
			if string(blobBytes(h, e.val)) != "4" {
				t.Fatalf("beta value = %q, want 4", blobBytes(h, e.val))
			}
		}
	}
	if !found {
		t.Fatal("beta missing from collision bucket")
	}
	// Delete from the bucket.
	col4, removed := m.deleteRec(col3, collisionShift, 0x1234, []byte("alpha"))
	if !removed || col4 == pmem.Nil {
		t.Fatalf("delete from bucket: removed=%v node=%#x", removed, uint64(col4))
	}
	if got := len(readCollision(h, nil, col4)); got != 2 {
		t.Fatalf("bucket has %d entries after delete, want 2", got)
	}
}

func TestMapMergeTwoDivergingHashes(t *testing.T) {
	h := newTestHeap(t)
	m := NewMap(h)
	k1 := newBlob(h, nil, []byte("a"))
	k2 := newBlob(h, nil, []byte("b"))
	// Hashes differ only at the second level (bits 5-9).
	h1 := uint64(0b00001_00001)
	h2 := uint64(0b00010_00001)
	sub := m.mergeTwo(vecBits, mapEntry{k1, pmem.Nil}, h1, mapEntry{k2, pmem.Nil}, h2)
	if h.Tag(sub) != TagMapNode {
		t.Fatalf("mergeTwo built tag %d, want map node", h.Tag(sub))
	}
	dataMap, nodeMap, entries, _ := readMapNode(h, nil, sub)
	if nodeMap != 0 || dataMap != 0b110 || len(entries) != 2 {
		t.Fatalf("merged node dataMap=%b nodeMap=%b entries=%d", dataMap, nodeMap, len(entries))
	}
	if !blobEqual(h, entries[0].key, []byte("a")) {
		t.Fatal("entries not index-ordered")
	}
}

func TestSetInsertContainsDelete(t *testing.T) {
	h := newTestHeap(t)
	s := NewSet(h)
	for i := uint64(0); i < 1000; i++ {
		var existed bool
		s, existed = s.Insert(key64(i))
		if existed {
			t.Fatalf("fresh key %d reported existing", i)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	s2, existed := s.Insert(key64(5))
	if !existed || s2.Len() != 1000 {
		t.Fatal("duplicate insert mishandled")
	}
	for i := uint64(0); i < 1000; i++ {
		if !s.Contains(key64(i)) {
			t.Fatalf("member %d missing", i)
		}
	}
	if s.Contains(key64(2000)) {
		t.Fatal("non-member found")
	}
	s3, removed := s.Delete(key64(7))
	if !removed || s3.Contains(key64(7)) {
		t.Fatal("delete failed")
	}
	count := 0
	s3.Range(func(_ []byte) bool { count++; return true })
	if count != 999 {
		t.Fatalf("Range visited %d members, want 999", count)
	}
}

func TestMapQuickAgainstModel(t *testing.T) {
	h := newTestHeap(t)
	type op struct {
		Key uint8
		Val uint16
		Del bool
	}
	f := func(ops []op) bool {
		m := NewMap(h)
		model := map[uint8]uint16{}
		for _, o := range ops {
			k := key64(uint64(o.Key))
			if o.Del {
				var removed bool
				m, removed = m.Delete(k)
				_, had := model[o.Key]
				if removed != had {
					return false
				}
				delete(model, o.Key)
			} else {
				v := make([]byte, 2)
				binary.LittleEndian.PutUint16(v, o.Val)
				var replaced bool
				m, replaced = m.Set(k, v)
				_, had := model[o.Key]
				if replaced != had {
					return false
				}
				model[o.Key] = o.Val
			}
		}
		if m.Len() != uint64(len(model)) {
			return false
		}
		for k, v := range model {
			got, ok := m.Get(key64(uint64(k)))
			if !ok || binary.LittleEndian.Uint16(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMapRecoveryRoundTrip(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := allocFormat(dev)
	m := NewMap(h)
	for i := uint64(0); i < 1500; i++ {
		m, _ = m.Set(key64(i), val32(i))
	}
	slot, err := h.RootSlot("map")
	if err != nil {
		t.Fatal(err)
	}
	dev.Sfence()
	h.SetRoot(slot, m.Addr())
	dev.Sfence()

	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	h2 := allocOpen(t, dev2)
	RegisterWalkers(h2)
	rs, err := h2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Roots != 1 {
		t.Fatalf("Roots = %d, want 1", rs.Roots)
	}
	slot2, _ := h2.RootSlot("map")
	m2 := MapAt(h2, h2.Root(slot2))
	if m2.Len() != 1500 {
		t.Fatalf("recovered Len = %d, want 1500", m2.Len())
	}
	for i := uint64(0); i < 1500; i += 97 {
		got, ok := m2.Get(key64(i))
		if !ok || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("recovered key %d wrong (ok=%v)", i, ok)
		}
	}
}
