package funcds

import (
	"testing"
	"testing/quick"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

func newTestHeap(t testing.TB) *alloc.Heap {
	t.Helper()
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	return allocFormat(pmem.New(cfg))
}

func allocFormat(dev *pmem.Device) *alloc.Heap {
	h := alloc.Format(dev)
	RegisterWalkers(h)
	return h
}

func allocOpen(t *testing.T, dev *pmem.Device) *alloc.Heap {
	t.Helper()
	h, err := alloc.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestStackPushPopOrder(t *testing.T) {
	h := newTestHeap(t)
	s := NewStack(h)
	for i := uint64(1); i <= 5; i++ {
		s = s.Push(i)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	for want := uint64(5); want >= 1; want-- {
		var v uint64
		var ok bool
		s, v, ok = s.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, want)
		}
	}
	if _, _, ok := s.Pop(); ok {
		t.Fatal("Pop of empty stack must report not-ok")
	}
}

func TestStackPureOldVersionUnchanged(t *testing.T) {
	h := newTestHeap(t)
	s0 := NewStack(h)
	s1 := s0.Push(10)
	s2 := s1.Push(20)
	s3, v, _ := s2.Pop()
	if v != 20 {
		t.Fatalf("popped %d, want 20", v)
	}
	if s0.Len() != 0 || s1.Len() != 1 || s2.Len() != 2 || s3.Len() != 1 {
		t.Fatal("older versions mutated by later operations")
	}
	if got := s1.Elements(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("s1 = %v, want [10]", got)
	}
	if got := s2.Elements(); len(got) != 2 || got[0] != 20 || got[1] != 10 {
		t.Fatalf("s2 = %v, want [20 10]", got)
	}
}

func TestStackStructuralSharing(t *testing.T) {
	h := newTestHeap(t)
	s := NewStack(h)
	for i := uint64(0); i < 100; i++ {
		s = s.Push(i)
	}
	before := h.Stats().CumBytes
	s2 := s.Push(100)
	grew := h.Stats().CumBytes - before
	// One node + one header, not a copy of the 100-node spine.
	if grew > 128 {
		t.Fatalf("push allocated %d bytes; structural sharing broken", grew)
	}
	_ = s2
}

func TestStackReclamationReturnsToBaseline(t *testing.T) {
	h := newTestHeap(t)
	s := NewStack(h)
	versions := []pmem.Addr{}
	for i := uint64(0); i < 50; i++ {
		old := s.Addr()
		s = s.Push(i)
		versions = append(versions, old)
	}
	for s.Len() > 0 {
		old := s.Addr()
		s, _, _ = s.Pop()
		versions = append(versions, old)
	}
	for _, a := range versions {
		h.Release(a)
	}
	h.Release(s.Addr())
	h.Fence()
	if got := h.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d after releasing all versions, want 0", got)
	}
}

func TestStackNoFencesDuringUpdates(t *testing.T) {
	h := newTestHeap(t)
	dev := h.Device()
	before := dev.Stats()
	s := NewStack(h)
	for i := uint64(0); i < 20; i++ {
		s = s.Push(i)
	}
	delta := dev.Stats().Sub(before)
	if delta.Fences != 0 {
		t.Fatalf("pure updates issued %d fences, want 0", delta.Fences)
	}
	if delta.Flushes == 0 {
		t.Fatal("pure updates must flush their writes")
	}
	if dev.DirtyLines() != 0 {
		t.Fatalf("%d dirty lines left unflushed", dev.DirtyLines())
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	h := newTestHeap(t)
	q := NewQueue(h)
	for i := uint64(1); i <= 7; i++ {
		q = q.Push(i)
	}
	for want := uint64(1); want <= 7; want++ {
		var v uint64
		var ok bool
		q, v, ok = q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop of empty queue must report not-ok")
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	h := newTestHeap(t)
	q := NewQueue(h)
	var model []uint64
	var seed uint64 = 3
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	for i := 0; i < 400; i++ {
		if next()%3 != 0 || len(model) == 0 {
			v := next()
			q = q.Push(v)
			model = append(model, v)
		} else {
			var v uint64
			var ok bool
			q, v, ok = q.Pop()
			if !ok || v != model[0] {
				t.Fatalf("step %d: Pop = %d,%v, want %d", i, v, ok, model[0])
			}
			model = model[1:]
		}
		if q.Len() != uint64(len(model)) {
			t.Fatalf("step %d: Len = %d, want %d", i, q.Len(), len(model))
		}
	}
}

func TestQueuePeek(t *testing.T) {
	h := newTestHeap(t)
	q := NewQueue(h)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek of empty queue must report not-ok")
	}
	q = q.Push(42).Push(43)
	// Rear-only queue: Peek must find the oldest element.
	if v, ok := q.Peek(); !ok || v != 42 {
		t.Fatalf("Peek = %d,%v, want 42", v, ok)
	}
	q, _, _ = q.Pop()
	if v, ok := q.Peek(); !ok || v != 43 {
		t.Fatalf("Peek after pop = %d,%v, want 43", v, ok)
	}
}

func TestQueueReversalFlushesMore(t *testing.T) {
	h := newTestHeap(t)
	dev := h.Device()
	q := NewQueue(h)
	for i := uint64(0); i < 64; i++ {
		q = q.Push(i)
	}
	// First pop triggers the reversal of the 64-element rear list.
	before := dev.Stats()
	q, _, _ = q.Pop()
	reversal := dev.Stats().Sub(before)
	// Subsequent pop just advances the front pointer.
	before = dev.Stats()
	q, _, _ = q.Pop()
	cheap := dev.Stats().Sub(before)
	if reversal.Flushes < 4*cheap.Flushes {
		t.Fatalf("reversal flushed %d lines vs %d for a cheap pop; expected a large burst (§6.4)",
			reversal.Flushes, cheap.Flushes)
	}
}

func TestQueueOldVersionsUnchanged(t *testing.T) {
	h := newTestHeap(t)
	q0 := NewQueue(h)
	q1 := q0.Push(1)
	q2 := q1.Push(2)
	q3, _, _ := q2.Pop()
	if got := q2.Elements(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("q2 = %v, want [1 2]", got)
	}
	if got := q3.Elements(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("q3 = %v, want [2]", got)
	}
	if q0.Len() != 0 || q1.Len() != 1 {
		t.Fatal("older queue versions mutated")
	}
}

func TestQueueQuickAgainstModel(t *testing.T) {
	h := newTestHeap(t)
	f := func(ops []uint8) bool {
		q := NewQueue(h)
		var model []uint64
		for i, op := range ops {
			if op%3 != 0 || len(model) == 0 {
				q = q.Push(uint64(i))
				model = append(model, uint64(i))
			} else {
				var v uint64
				var ok bool
				q, v, ok = q.Pop()
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		got := q.Elements()
		if len(got) != len(model) {
			return false
		}
		for i := range got {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStackQuickAgainstModel(t *testing.T) {
	h := newTestHeap(t)
	f := func(ops []uint8) bool {
		s := NewStack(h)
		var model []uint64
		for i, op := range ops {
			if op%3 != 0 || len(model) == 0 {
				s = s.Push(uint64(i))
				model = append(model, uint64(i))
			} else {
				var v uint64
				var ok bool
				s, v, ok = s.Pop()
				if !ok || v != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			}
		}
		return s.Len() == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
