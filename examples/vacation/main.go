// Vacation runs the paper's travel reservation application on MOD
// datastructures: four recoverable maps under one manager object, with
// every reservation updating two maps failure-atomically through
// CommitSiblings (§6.2) — then proves atomicity by crashing mid-workload
// and auditing the recovered books.
package main

import (
	"flag"
	"fmt"
	"log"

	mod "github.com/mod-ds/mod"
	"github.com/mod-ds/mod/internal/apps"
)

func main() {
	customers := flag.Int("customers", 400, "number of customers to book")
	flag.Parse()

	cfg := mod.DefaultDeviceConfig(256 << 20)
	cfg.TrackDurable = true
	db, _, err := mod.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sys, err := apps.NewMODReservations(db.Store())
	if err != nil {
		log.Fatal(err)
	}

	// Inventory: 100 of each resource, 5 units each.
	for kind := apps.Cars; kind <= apps.Rooms; kind++ {
		for id := uint64(0); id < 100; id++ {
			sys.AddResource(kind, id, 5)
		}
	}

	booked := 0
	for c := 0; c < *customers; c++ {
		kind := apps.ResourceKind(c % 3)
		if sys.Reserve(kind, uint64(c%100), uint64(c)) {
			booked++
		}
	}
	db.Sync()
	fmt.Printf("booked %d/%d customers\n", booked, *customers)

	// Crash with random evictions mid-life, then audit the books: every
	// booking must have a matching inventory decrement — no torn
	// reservations, ever.
	imgs := db.CrashImages(2, 1234)
	db2, _, err := mod.Open(mod.DefaultDeviceConfig(256<<20), mod.WithExistingImages(imgs))
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	sys2, err := apps.NewMODReservations(db2.Store())
	if err != nil {
		log.Fatal(err)
	}

	bookings := map[apps.ResourceKind]map[uint64]uint32{}
	recovered := 0
	for c := 0; c < *customers; c++ {
		if kind, res, ok := sys2.Booking(uint64(c)); ok {
			if bookings[kind] == nil {
				bookings[kind] = map[uint64]uint32{}
			}
			bookings[kind][res]++
			recovered++
		}
	}
	fmt.Printf("recovered %d bookings; auditing inventory...\n", recovered)
	for kind := apps.Cars; kind <= apps.Rooms; kind++ {
		for id := uint64(0); id < 100; id++ {
			qty, _ := sys2.Query(kind, id)
			if qty+bookings[kind][id] != 5 {
				log.Fatalf("AUDIT FAILED: %v %d has qty %d with %d bookings", kind, id, qty, bookings[kind][id])
			}
		}
	}
	fmt.Println("audit passed: every booking matches an inventory decrement")
}
