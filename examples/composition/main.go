// Composition walks through the paper's Fig. 7 use cases for the MOD
// Composition interface: multiple updates to one datastructure, sibling
// datastructures under a parent object, and unrelated datastructures —
// each installed failure-atomically by the matching Commit variant.
package main

import (
	"fmt"
	"log"

	mod "github.com/mod-ds/mod"
)

func main() {
	db, _, err := mod.Open(mod.DefaultDeviceConfig(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	// The Composition interface (BeginFASE/Commit*) lives on the
	// concrete Store.
	store := db.Store()
	dev := store.Device()

	// Fig. 7b — multiple updates of a single datastructure: swap two
	// vector elements via two pure updates on successive shadows and one
	// CommitSingle (one fence).
	v, err := store.Vector("v")
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		v.Push(i * 100)
	}
	before := dev.Stats()
	store.BeginFASE()
	a, b := v.Get(1), v.Get(6)
	s1 := v.PureUpdate(1, b)
	s2 := s1.Update(6, a)
	store.CommitSingle(v, s1, s2)
	store.EndFASE()
	fmt.Printf("vector swap: v[1]=%d v[6]=%d, fences used: %d\n",
		v.Get(1), v.Get(6), dev.Stats().Sub(before).Fences)

	// Fig. 8c — single updates of sibling datastructures under a common
	// parent: CommitSiblings shadows the parent and swaps one pointer.
	mgr, err := store.Parent("bank", "checking", "savings")
	if err != nil {
		log.Fatal(err)
	}
	checking, _ := mgr.Map("checking")
	savings, _ := mgr.Map("savings")
	checking.Set([]byte("alice"), []byte("100"))
	savings.Set([]byte("alice"), []byte("0"))

	before = dev.Stats()
	store.BeginFASE()
	cShadow, _ := checking.PureSet([]byte("alice"), []byte("40"))
	sShadow, _ := savings.PureSet([]byte("alice"), []byte("60"))
	store.CommitSiblings(mgr,
		mod.Update{DS: checking, Shadows: []mod.Version{cShadow}},
		mod.Update{DS: savings, Shadows: []mod.Version{sShadow}},
	)
	store.EndFASE()
	c, _ := checking.Get([]byte("alice"))
	s, _ := savings.Get([]byte("alice"))
	fmt.Printf("transfer: checking=%s savings=%s, fences used: %d\n",
		c, s, dev.Stats().Sub(before).Fences)

	// Fig. 7c / 8d — single updates of unrelated datastructures: a short
	// pointer transaction installs both root swaps atomically, at the
	// price of extra ordering points (the uncommon case).
	v1, _ := store.Vector("v1")
	v2, _ := store.Vector("v2")
	v1.Push(111)
	v2.Push(222)
	before = dev.Stats()
	store.BeginFASE()
	x, y := v1.Get(0), v2.Get(0)
	u1 := v1.PureUpdate(0, y)
	u2 := v2.PureUpdate(0, x)
	store.CommitUnrelated(
		mod.Update{DS: v1, Shadows: []mod.Version{u1}},
		mod.Update{DS: v2, Shadows: []mod.Version{u2}},
	)
	store.EndFASE()
	fmt.Printf("cross-structure swap: v1[0]=%d v2[0]=%d, fences used: %d\n",
		v1.Get(0), v2.Get(0), dev.Stats().Sub(before).Fences)
}
