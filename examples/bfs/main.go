// BFS runs the paper's bfs workload as a resumable application: a
// breadth-first search over a Flickr-like R-MAT graph whose frontier
// queue AND visited set live in persistent memory. The demo crashes the
// machine mid-traversal, recovers, and finishes the search — the
// traversal state survives because every queue and set update is
// failure-atomic.
package main

import (
	"flag"
	"fmt"
	"log"

	mod "github.com/mod-ds/mod"
	"github.com/mod-ds/mod/internal/graph"
)

func key(n uint64) []byte {
	return []byte(fmt.Sprintf("%d", n))
}

// step dequeues one node and enqueues its unvisited neighbors, returning
// false when the frontier is empty.
func step(g *graph.Graph, frontier *mod.Queue, visited *mod.Set, count *int) bool {
	u, ok := frontier.Dequeue()
	if !ok {
		return false
	}
	for _, v := range g.Neighbors(int32(u)) {
		if !visited.Contains(key(uint64(v))) {
			visited.Insert(key(uint64(v)))
			*count++
			frontier.Enqueue(uint64(v))
		}
	}
	return true
}

func main() {
	nodes := flag.Int("nodes", 20_000, "graph nodes (Flickr scale: 820000)")
	flag.Parse()
	edges := *nodes * 12

	g := graph.RMAT(*nodes, edges, 7) // volatile, rebuilt each run (§6.1)
	src := g.MaxDegreeNode()

	cfg := mod.DefaultDeviceConfig(512 << 20)
	cfg.TrackDurable = true
	db, _, err := mod.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	frontier, _ := db.Queue("bfs-frontier")
	visited, _ := db.Set("bfs-visited")

	visited.Insert(key(uint64(src)))
	frontier.Enqueue(uint64(src))
	count := 1

	// Traverse half the reachable component, then lose power.
	_, want := graph.BFS(g, src)
	for count < want/2 {
		if !step(g, frontier, visited, &count) {
			break
		}
	}
	db.Sync()
	fmt.Printf("visited %d/%d nodes, frontier holds %d... power failure!\n",
		count, want, frontier.Len())
	imgs := db.CrashImages(2 /* random evictions */, 99)

	// Reboot: recover the traversal state and finish.
	db2, info, err := mod.Open(mod.DefaultDeviceConfig(512<<20), mod.WithExistingImages(imgs))
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	frontier2, _ := db2.Queue("bfs-frontier")
	visited2, _ := db2.Set("bfs-visited")
	count2 := int(visited2.Len())
	fmt.Printf("recovered: %d visited, %d in frontier, %d leaked blocks swept\n",
		count2, frontier2.Len(), info.Stats.LeakedBlocks)

	for step(g, frontier2, visited2, &count2) {
	}
	fmt.Printf("traversal complete: %d nodes (reference BFS: %d)\n", count2, want)
	if count2 != want {
		log.Fatalf("BFS mismatch: got %d, want %d", count2, want)
	}
}
