// Kvcache is the paper's memcached-style application: a key-value cache
// over a single recoverable MOD map, served over a memcached-flavored TCP
// text protocol. Every set/delete is one failure-atomic section (§6.2).
//
// Run a server:
//
//	kvcache -listen :11211
//
// then from another terminal:
//
//	printf 'set greeting hello\nget greeting\nstats\nquit\n' | nc localhost 11211
//
// Or run a self-contained demo session over an in-memory pipe:
//
//	kvcache -selftest
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	mod "github.com/mod-ds/mod"
	"github.com/mod-ds/mod/internal/apps"
)

func main() {
	listen := flag.String("listen", "", "TCP address to serve (e.g. :11211)")
	selftest := flag.Bool("selftest", false, "run a scripted client against an in-process server")
	flag.Parse()

	db, _, err := mod.Open(mod.DefaultDeviceConfig(256 << 20))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	m, err := db.Map("cache")
	if err != nil {
		log.Fatal(err)
	}
	cache := apps.NewCache(m)

	switch {
	case *selftest:
		runSelftest(cache)
	case *listen != "":
		serve(cache, *listen)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func serve(cache *apps.Cache, addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("kvcache: serving recoverable cache on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		// The store is single-threaded (as in the paper's workloads), so
		// sessions are handled sequentially.
		if err := cache.ServeConn(conn); err != nil {
			log.Printf("kvcache: session error: %v", err)
		}
		conn.Close()
	}
}

func runSelftest(cache *apps.Cache) {
	script := strings.Join([]string{
		"set lang go",
		"set paper MOD",
		"get lang",
		"get paper",
		"get missing",
		"delete lang",
		"get lang",
		"stats",
		"quit",
	}, "\n") + "\n"

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- cache.ServeConn(server) }()
	go func() {
		client.Write([]byte(script))
	}()
	buf := make([]byte, 4096)
	var out strings.Builder
	for {
		n, err := client.Read(buf)
		out.Write(buf[:n])
		if err != nil || strings.Contains(out.String(), "STAT deletes") {
			break
		}
	}
	client.Close()
	<-done
	fmt.Print(out.String())
}
