// Quickstart demonstrates the MOD Basic interface: recoverable
// datastructures with failure-atomic, one-fence updates, surviving a
// simulated power failure.
package main

import (
	"fmt"
	"log"

	mod "github.com/mod-ds/mod"
)

func main() {
	// A 64 MB simulated persistent memory device that tracks durability
	// so we can pull crash images from it.
	cfg := mod.DefaultDeviceConfig(64 << 20)
	cfg.TrackDurable = true

	db, _, err := mod.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Every update below is one failure-atomic section with exactly one
	// ordering point (sfence), the paper's headline property.
	users, err := db.Map("users")
	if err != nil {
		log.Fatal(err)
	}
	users.Set([]byte("ada"), []byte("lovelace"))
	users.Set([]byte("grace"), []byte("hopper"))

	tasks, err := db.Queue("tasks")
	if err != nil {
		log.Fatal(err)
	}
	tasks.Enqueue(1)
	tasks.Enqueue(2)
	tasks.Enqueue(3)

	scores, err := db.Vector("scores")
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		scores.Push(i * 10)
	}
	scores.Swap(0, 9) // two pure updates, one commit (Fig. 7b)

	stats := db.Stats()
	fmt.Printf("before crash: %d users, %d tasks, %d scores\n", users.Len(), tasks.Len(), scores.Len())
	fmt.Printf("device: %d flushes, %d fences, %.1f simulated us\n",
		stats.Flushes, stats.Fences, stats.TotalNs/1e3)

	// Make the last commit durable, then pull the plug.
	db.Sync()
	images := db.CrashImages(0 /* fenced state only */, 42)

	// A new process attaches to the same "DIMM": recovery sweeps any
	// interrupted work and rebinds the named roots.
	db2, info, err := mod.Open(mod.DefaultDeviceConfig(64<<20), mod.WithExistingImages(images))
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("after crash: recovered %d live blocks, swept %d leaked blocks\n",
		info.Stats.LiveBlocks, info.Stats.LeakedBlocks)

	users2, _ := db2.Map("users")
	tasks2, _ := db2.Queue("tasks")
	scores2, _ := db2.Vector("scores")
	who, _ := users2.Get([]byte("ada"))
	head, _ := tasks2.Peek()
	fmt.Printf("ada -> %s, next task %d, scores[0] = %d\n", who, head, scores2.Get(0))
}
