// Concurrent demonstrates the Store's concurrency model: forked
// per-goroutine views, lock-free snapshots that never block on
// committing writers, and per-root commit serialization — followed by a
// crash and recovery to show the concurrent history is durable.
package main

import (
	"fmt"
	"sync"

	mod "github.com/mod-ds/mod"
)

func main() {
	cfg := mod.DefaultDeviceConfig(64 << 20)
	cfg.TrackDurable = true
	db, _, err := mod.Open(cfg)
	if err != nil {
		panic(err)
	}
	defer db.Close()
	store := db.Store()

	const shards = 4
	for s := 0; s < shards; s++ {
		m, _ := store.Map(fmt.Sprintf("shard-%d", s))
		for k := 0; k < 100; k++ {
			m.Set([]byte(fmt.Sprintf("key-%03d", k)), []byte("seed"))
		}
	}
	store.Sync()

	var wg sync.WaitGroup
	// Two writers over disjoint shards: commits proceed in parallel.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := store.Fork()
			for i := 0; i < 500; i++ {
				m, _ := view.Map(fmt.Sprintf("shard-%d", w*2+i%2))
				m.Set([]byte(fmt.Sprintf("key-%03d", i%200)), []byte(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	// Four readers snapshotting while the writers commit.
	var lookups sync.WaitGroup
	reads := make([]int, 4)
	readNs := make([]float64, 4)
	for r := 0; r < 4; r++ {
		lookups.Add(1)
		go func(r int) {
			defer lookups.Done()
			view := store.Fork()
			for i := 0; i < 300; i++ {
				m, _ := view.Map(fmt.Sprintf("shard-%d", i%shards))
				snap := m.Snapshot()
				if _, ok := snap.Get([]byte(fmt.Sprintf("key-%03d", i%100))); ok {
					reads[r]++
				}
				snap.Close()
			}
			readNs[r] = view.Device().LocalNs()
		}(r)
	}
	wg.Wait()
	lookups.Wait()
	store.Sync()

	total := 0
	for r, n := range reads {
		fmt.Printf("reader %d: %d hits in %.1f simulated us (own critical path)\n", r, n, readNs[r]/1e3)
		total += n
	}
	fmt.Printf("readers observed %d committed values during %d concurrent FASEs\n", total, 1000)

	// Crash and recover: the concurrent history must be durable.
	imgs := db.CrashImages(0 /* fenced state only */, 1)
	db2, info, err := mod.Open(mod.DefaultDeviceConfig(64<<20), mod.WithExistingImages(imgs))
	if err != nil {
		panic(err)
	}
	defer db2.Close()
	live := uint64(0)
	for s := 0; s < shards; s++ {
		m, _ := db2.Map(fmt.Sprintf("shard-%d", s))
		live += m.Len()
	}
	fmt.Printf("after crash: %d live entries across %d shards, %d blocks recovered, %d leaked blocks swept\n",
		live, shards, info.Stats.LiveBlocks, info.Stats.LeakedBlocks)
}
